package leanconsensus

import (
	"context"
	"time"

	"leanconsensus/internal/campaign"
)

// CampaignSpec is the declarative form of an experiment campaign: run
// Reps independent lean-consensus instances for every cell of the
// cartesian grid Models × Dists × Ns × Seeds. Empty lists select
// defaults (the default model, exponential noise, n=8, seed 1). Names
// resolve through the same registries as every other entry point, so a
// newly registered model or distribution is immediately sweepable.
//
// Campaigns are the paper's experiments turned into configuration: the
// Figure 1 reproduction, for example, is a six-distribution grid (see
// cmd/leansweep's built-in "fig1" spec) rather than a bespoke program.
type CampaignSpec struct {
	// Name labels the campaign in reports and checkpoint manifests.
	Name string `json:"name,omitempty"`
	// Models are execution-model names (see Backends). A model that
	// ignores noise (hybrid) collapses the Dists axis to a single "none"
	// cell per (n, seed).
	Models []string `json:"models,omitempty"`
	// Dists are noise-distribution names (see the dist registry).
	Dists []string `json:"dists,omitempty"`
	// Adversaries are adversarial-schedule names, optionally
	// parameterized ("antileader:m=8"); empty selects the zero schedule.
	// A model outside the adversary axis (msgnet) collapses the axis to a
	// single "none" cell, exactly as noise-free models collapse Dists.
	Adversaries []string `json:"adversaries,omitempty"`
	// Ns are process counts per instance.
	Ns []int `json:"ns,omitempty"`
	// Seeds are cell seeds; each repetition's instance seed derives from
	// its cell seed with the harness's Figure 1 per-trial mix, so
	// campaign numbers reproduce harness numbers for the same seeds.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Reps is the repetition count per cell.
	Reps int `json:"reps"`
	// Correlation, when non-empty, is sent as the X-Lean-Correlation
	// header on Client.SubmitCampaign: the service stamps it as the
	// Parent of the campaign's root journal events, chaining this
	// submission into a correlation tree that spans processes. It is
	// never part of the spec body (or the spec hash) — two submissions
	// differing only in Correlation are the same campaign.
	Correlation string `json:"-"`
	// Tenant, when non-empty, is sent as the X-Lean-Tenant header on
	// Client.SubmitCampaign: the service admits the grid under that
	// tenant's fair share and labels its journal events. Like
	// Correlation, it is transport metadata — never part of the spec body
	// or the spec hash.
	Tenant string `json:"-"`
}

// CampaignProgress reports a campaign's position to Campaign.OnProgress.
type CampaignProgress struct {
	// CellKey is the cell that just completed ("" for the initial
	// restored-from-checkpoint notification).
	CellKey string
	// CellsDone/CellsTotal count cells; InstancesDone/InstancesTotal
	// count repetitions.
	CellsDone, CellsTotal         int
	InstancesDone, InstancesTotal int64
	// CellLatency is the completed cell's wall-clock execution time (0
	// for the restored-from-checkpoint notification) — the only
	// nondeterministic field, for throughput and ETA displays.
	CellLatency time.Duration
}

// CampaignCell is one completed grid cell's statistics. Every field is
// deterministic: a pure function of (model, dist, adversary, n, seed,
// reps).
type CampaignCell struct {
	Model     string `json:"model"`
	Dist      string `json:"dist"`
	Adversary string `json:"adversary"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
	Reps      int64  `json:"reps"`

	Decided0            int64 `json:"decided0"`
	Decided1            int64 `json:"decided1"`
	Errors              int64 `json:"errors"`
	AgreementViolations int64 `json:"agreementViolations"`
	ValidityViolations  int64 `json:"validityViolations"`
	Undecided           int64 `json:"undecided"`

	MeanRound    float64 `json:"meanRound"`
	RoundCI95    float64 `json:"roundCi95"`
	MinRound     float64 `json:"minRound"`
	MaxRound     float64 `json:"maxRound"`
	P50Round     float64 `json:"p50Round"`
	P90Round     float64 `json:"p90Round"`
	P99Round     float64 `json:"p99Round"`
	MaxLastRound int     `json:"maxLastRound"`

	Ops            int64   `json:"ops"`
	MeanOpsPerProc float64 `json:"meanOpsPerProc"`
	SimTime        float64 `json:"simTime"`
}

// CampaignReport is a completed campaign: one row per grid cell, in grid
// order. Reports are byte-identical across runs, pool shapes, and
// interrupt/resume boundaries.
type CampaignReport struct {
	// Name and SpecHash identify the campaign; SpecHash is a content hash
	// of the normalized spec, the key that binds checkpoints to grids.
	Name     string `json:"name,omitempty"`
	SpecHash string `json:"specHash"`
	// Spec echoes the normalized spec (defaults applied, names
	// canonicalized).
	Spec CampaignSpec `json:"spec"`
	// Cells holds the per-cell statistics.
	Cells []CampaignCell `json:"cells"`
}

// CSV renders the report as comma-separated values at full float
// precision.
func (r *CampaignReport) CSV() string { return r.inner().CSV() }

// JSON renders the report as indented JSON.
func (r *CampaignReport) JSON() ([]byte, error) { return r.inner().JSON() }

// inner rebuilds the internal report for the renderers.
func (r *CampaignReport) inner() *campaign.Report {
	rep := &campaign.Report{
		Name:     r.Name,
		SpecHash: r.SpecHash,
		Spec:     specToInternal(r.Spec),
		Cells:    make([]campaign.CellReport, len(r.Cells)),
	}
	for i, c := range r.Cells {
		rep.Cells[i] = campaign.CellReport(c)
	}
	return rep
}

// Campaign is a configured experiment campaign. Fill the spec and the
// runtime knobs, then Run it; the zero values of everything but Spec
// select defaults.
type Campaign struct {
	// Spec is the grid to sweep.
	Spec CampaignSpec
	// Shards and Workers shape the arena worker pool (defaults 8 and 2).
	// The shape changes wall-clock speed only, never report bytes.
	Shards, Workers int
	// Checkpoint, when non-empty, is a manifest path that is atomically
	// rewritten after every completed cell.
	Checkpoint string
	// Resume permits continuing an existing manifest at Checkpoint (its
	// spec hash must match). Without Resume an existing manifest is an
	// error.
	Resume bool
	// OnProgress, when non-nil, is called serially after each completed
	// cell.
	OnProgress func(CampaignProgress)
}

// Run executes the campaign and returns its deterministic report. On ctx
// cancellation it stops cleanly after draining in-flight instances —
// completed cells stay in the checkpoint — and returns ctx.Err().
func (c *Campaign) Run(ctx context.Context) (*CampaignReport, error) {
	cfg := campaign.Config{
		Shards:     c.Shards,
		Workers:    c.Workers,
		Checkpoint: c.Checkpoint,
		Resume:     c.Resume,
	}
	if c.OnProgress != nil {
		cfg.OnCell = func(p campaign.Progress) {
			c.OnProgress(CampaignProgress(p))
		}
	}
	rep, err := campaign.Run(ctx, specToInternal(c.Spec), cfg)
	if err != nil {
		return nil, err
	}
	return reportFromInternal(rep), nil
}

// specToInternal converts the public spec to the internal one.
// Correlation is transport metadata, not part of the grid, so it does
// not cross this boundary.
func specToInternal(s CampaignSpec) campaign.Spec {
	return campaign.Spec{
		Name:        s.Name,
		Models:      s.Models,
		Dists:       s.Dists,
		Adversaries: s.Adversaries,
		Ns:          s.Ns,
		Seeds:       s.Seeds,
		Reps:        s.Reps,
	}
}

// specFromInternal converts the internal spec to the public mirror.
func specFromInternal(s campaign.Spec) CampaignSpec {
	return CampaignSpec{
		Name:        s.Name,
		Models:      s.Models,
		Dists:       s.Dists,
		Adversaries: s.Adversaries,
		Ns:          s.Ns,
		Seeds:       s.Seeds,
		Reps:        s.Reps,
	}
}

// reportFromInternal converts the internal report to the public mirror.
func reportFromInternal(rep *campaign.Report) *CampaignReport {
	out := &CampaignReport{
		Name:     rep.Name,
		SpecHash: rep.SpecHash,
		Spec:     specFromInternal(rep.Spec),
		Cells:    make([]CampaignCell, len(rep.Cells)),
	}
	for i, c := range rep.Cells {
		out.Cells[i] = CampaignCell(c)
	}
	return out
}
