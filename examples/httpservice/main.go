// Command httpservice demonstrates the leanserve HTTP service and its
// typed Go client end to end, entirely in-process: it mounts the server
// on an httptest listener, submits a two-model batch, streams per-shard
// progress over SSE, and cross-checks the results against the service's
// Prometheus telemetry — the same counters an operator would scrape.
//
// For the standalone daemon, see cmd/leanserve; the wire traffic is
// identical.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"leanconsensus"
	"leanconsensus/internal/server"
)

func main() {
	srv, err := server.New(server.Config{Shards: 4, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	client := leanconsensus.NewClient(ts.URL)
	ctx := context.Background()

	// What does this service accept? The catalog is the live registry.
	cat, err := client.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service models (default %q):\n", cat.DefaultModel)
	for _, m := range cat.Models {
		fmt.Printf("  %-8s %s\n", m.Name, m.Brief)
	}

	// One batch, two execution models, fixed seeds: the deterministic
	// fields of the results replay exactly.
	id, err := client.SubmitJobs(ctx,
		leanconsensus.JobSpec{Model: "sched", Dist: "exponential", N: 8, Seed: 1, Instances: 2000},
		leanconsensus.JobSpec{Model: "hybrid", N: 8, Seed: 2, Instances: 1000},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted job %s\n", id)

	final, err := client.StreamJob(ctx, id, func(st leanconsensus.JobStatus) {
		var done, total int64
		for _, ss := range st.Specs {
			done += ss.Done
			total += int64(ss.Instances)
		}
		fmt.Printf("  progress: %d/%d instances\n", done, total)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresults:")
	for _, ss := range final.Specs {
		r := ss.Result
		fmt.Printf("  %-7s decided=[%d %d] mean-round=%.2f ops=%d (%.0f decisions/sec)\n",
			r.Model, r.Decided0, r.Decided1, r.MeanFirstRound, r.Ops, r.Throughput)
	}

	// The scraped telemetry agrees with the returned results exactly.
	text, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndecision counters from /metrics:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "leanconsensus_decisions_total") {
			fmt.Println(" ", line)
		}
	}
}
