// Command sweep demonstrates declarative experiment campaigns through
// the public API: a grid over two noise distributions and three process
// counts runs through the arena with streaming per-cell aggregation and
// a checkpoint manifest, then the same campaign "resumes" from the
// finished checkpoint without re-running a single instance — and emits
// byte-identical output, the property that makes campaign results safe
// to cache, diff, and archive.
//
// The shipped Figure 1 campaign is the same machinery at paper scale:
//
//	go run ./cmd/leansweep -spec fig1 -format table
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"leanconsensus"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "leansweep-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := leanconsensus.CampaignSpec{
		Name:  "example",
		Dists: []string{"exponential", "two-point"},
		Ns:    []int{4, 16, 64},
		Seeds: []uint64{1},
		Reps:  200,
	}

	ckpt := filepath.Join(dir, "sweep.ckpt.json")
	c := &leanconsensus.Campaign{
		Spec:       spec,
		Shards:     4,
		Checkpoint: ckpt,
		OnProgress: func(p leanconsensus.CampaignProgress) {
			fmt.Printf("cell %d/%d done (%d/%d instances)\n",
				p.CellsDone, p.CellsTotal, p.InstancesDone, p.InstancesTotal)
		},
	}
	rep, err := c.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmean first-decision round by cell:")
	for _, cell := range rep.Cells {
		fmt.Printf("  %-10s n=%-3d mean=%.2f ±%.2f  p99=%g  ops/proc=%.1f\n",
			cell.Dist, cell.N, cell.MeanRound, cell.RoundCI95, cell.P99Round, cell.MeanOpsPerProc)
	}

	// Resume from the completed checkpoint: every cell restores from the
	// manifest (the callback reports all of them done up front), zero
	// instances re-run, exact same bytes out.
	resumed, err := (&leanconsensus.Campaign{
		Spec: spec, Checkpoint: ckpt, Resume: true,
		OnProgress: func(p leanconsensus.CampaignProgress) {
			fmt.Printf("restored %d/%d cells from checkpoint\n", p.CellsDone, p.CellsTotal)
		},
	}).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := rep.JSON()
	b, _ := resumed.JSON()
	fmt.Printf("resumed report byte-identical: %v\n", bytes.Equal(a, b))
}
