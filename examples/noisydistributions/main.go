// Noisy distributions: how the environment's noise shapes termination.
//
// Runs lean-consensus at several sizes under each of the paper's Figure 1
// interarrival distributions plus the Theorem 13 lower-bound distribution,
// and prints the mean round of first termination — a miniature of the
// paper's Figure 1 (run cmd/leanbench for the real thing).
//
//	go run ./examples/noisydistributions
package main

import (
	"fmt"
	"log"

	"leanconsensus"
)

func main() {
	// The six Figure 1 distributions. (The Theorem 13 lower-bound
	// distribution TwoPoint(1, 2) is omitted: round counts are invariant
	// under time scaling, so it behaves identically to TwoPoint(2/3, 4/3).)
	distributions := leanconsensus.Figure1Distributions()
	ns := []int{2, 16, 128}
	const trials = 200

	fmt.Printf("%-38s", "mean round of first termination")
	for _, n := range ns {
		fmt.Printf("  n=%-5d", n)
	}
	fmt.Println()

	for _, d := range distributions {
		fmt.Printf("%-38s", d.String())
		for _, n := range ns {
			sum := 0.0
			for t := 0; t < trials; t++ {
				res, err := leanconsensus.Simulate(n,
					leanconsensus.WithDistribution(d),
					leanconsensus.WithSeed(uint64(1000*n+t)),
				)
				if err != nil {
					log.Fatal(err)
				}
				sum += float64(res.FirstRound)
			}
			fmt.Printf("  %-7.2f", sum/trials)
		}
		fmt.Println()
	}
	fmt.Println("\nnote the paper's two headline shapes: rounds grow ~log n with small")
	fmt.Println("constants, and the truncated normal is inverted (fewer rounds as n grows).")
}
