// Hybrid scheduler: deterministic constant-time consensus on a
// uniprocessor (Section 7, Theorem 14).
//
// Under quantum/priority scheduling with a quantum of at least 8
// operations, lean-consensus needs no randomness at all: every process
// decides within 12 operations, whatever the scheduler does. The example
// sweeps the quantum and pits several adversarial schedulers against the
// algorithm.
//
//	go run ./examples/hybridscheduler
package main

import (
	"fmt"

	"leanconsensus"
)

func main() {
	schedulers := []struct {
		name string
		cfg  func(c *leanconsensus.HybridConfig)
	}{
		{"round-robin", func(c *leanconsensus.HybridConfig) {}},
		{"randomized", func(c *leanconsensus.HybridConfig) { c.Randomize = true }},
		{"laggard (keeps the race tight)", func(c *leanconsensus.HybridConfig) {
			c.Scheduler = leanconsensus.SchedulerLaggard
		}},
	}

	fmt.Println("max operations per process, 8 processes, mixed inputs:")
	fmt.Printf("%-34s", "scheduler \\ quantum")
	quanta := []int{2, 4, 8, 16}
	for _, q := range quanta {
		fmt.Printf("  q=%-3d", q)
	}
	fmt.Println()

	inputs := []int{0, 1, 0, 1, 0, 1, 0, 1}
	for _, s := range schedulers {
		fmt.Printf("%-34s", s.name)
		for _, q := range quanta {
			worst := int64(0)
			stuck := false
			for seed := uint64(0); seed < 200 && !stuck; seed++ {
				cfg := leanconsensus.HybridConfig{
					Inputs:  inputs,
					Quantum: q,
					Seed:    seed,
				}
				s.cfg(&cfg)
				res, err := leanconsensus.SimulateHybrid(cfg)
				if err != nil {
					// Small quanta admit perfectly symmetric schedules on
					// which the deterministic algorithm never decides —
					// the behavior Theorem 14's quantum >= 8 rules out.
					stuck = true
					continue
				}
				if res.MaxOps > worst {
					worst = res.MaxOps
				}
			}
			if stuck {
				fmt.Printf("  %-5s", "stuck")
			} else {
				fmt.Printf("  %-5d", worst)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nTheorem 14: with quantum >= 8 no process ever exceeds 12 operations;")
	fmt.Println("below it, schedules exist that loop forever (\"stuck\") or blow the bound.")
	fmt.Println("(internal/modelcheck verifies the bound over EVERY schedule for small n,")
	fmt.Println("not just the adversaries sampled here.)")
}
