// Quickstart: run one simulated lean-consensus among eight processes with
// mixed inputs and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"leanconsensus"
)

func main() {
	// Eight processes; the first half propose 0, the second half 1 (the
	// paper's simulation setup). Exponential(1) interarrival noise is the
	// default. The seed makes the run reproducible.
	res, err := leanconsensus.Simulate(8,
		leanconsensus.WithSeed(2026),
		leanconsensus.WithRecording(),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreed value:        %d\n", res.Value)
	fmt.Printf("first decision:      round %d\n", res.FirstRound)
	fmt.Printf("last decision:       round %d (Lemma 4: at most first+1)\n", res.LastRound)
	fmt.Printf("simulated duration:  %.3f time units\n", res.Time)
	for i, ops := range res.OpsPerProcess {
		fmt.Printf("  process %d: %2d operations, decided %d\n", i, ops, res.Decisions[i])
	}

	// WithRecording enables checking the paper's safety lemmas against
	// the actual operation history of this run.
	if err := res.CheckInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("invariants hold: agreement, validity, Lemma 2, Lemma 4")
}
