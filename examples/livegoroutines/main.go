// Live goroutines: the same algorithm on real concurrency.
//
// lean-consensus runs unchanged on goroutines over sync/atomic registers;
// the Go scheduler and the OS play the role of the noisy environment. The
// example runs many consensus instances, with and without injected sleep
// noise, and reports rounds and operation counts.
//
//	go run ./examples/livegoroutines
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"leanconsensus"
)

func main() {
	const n = 8
	const runs = 200

	configs := []struct {
		name  string
		noise leanconsensus.Distribution
		yield bool
	}{
		{"pure runtime scheduling", nil, false},
		{"with Gosched yields", nil, true},
		{"with exponential sleep noise", leanconsensus.Exponential(1), false},
	}

	for _, cfg := range configs {
		var maxRound, totalOps, backups int
		for r := 0; r < runs; r++ {
			inputs := make([]int, n)
			for i := range inputs {
				inputs[i] = (r + i) % 2 // alternate mixed inputs
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := leanconsensus.Live(ctx, leanconsensus.LiveConfig{
				Inputs:     inputs,
				SleepNoise: cfg.noise,
				SleepUnit:  100 * time.Nanosecond,
				Seed:       uint64(r),
				Yield:      cfg.yield,
			})
			cancel()
			if err != nil {
				log.Fatalf("%s run %d: %v", cfg.name, r, err)
			}
			if res.Rounds > maxRound {
				maxRound = res.Rounds
			}
			for _, ops := range res.OpsPerProcess {
				totalOps += int(ops)
			}
			backups += res.BackupUsed
		}
		fmt.Printf("%-30s  worst round %2d   mean ops/proc %5.1f   backup used %d\n",
			cfg.name, maxRound, float64(totalOps)/float64(runs*n), backups)
	}
	fmt.Println("\nreal schedulers are noisy enough: the race disperses in a handful of")
	fmt.Println("rounds, and the bounded-space backup is almost never touched (Theorem 15).")
}
