// Message passing: the Section 10 extension, answered constructively.
//
// The paper asks whether noisy scheduling can solve consensus quickly in
// an asynchronous message-passing model. This example runs the unchanged
// lean-consensus machines over ABD-emulated registers (majority quorums):
// message-delay noise perturbs the schedule exactly the way operation
// noise does in shared memory — and a crashed minority changes nothing.
//
//	go run ./examples/messagepassing
package main

import (
	"fmt"
	"log"

	"leanconsensus"
)

func main() {
	const trials = 50

	fmt.Printf("%4s  %8s  %12s  %14s\n", "n", "crashes", "mean rounds", "messages/proc")
	for _, tc := range []struct {
		n       int
		crashes []int
	}{
		{3, nil},
		{5, nil},
		{5, []int{1, 2}}, // two of five crashed (one of each input): live majority
		{9, nil},
		{9, []int{1, 2, 5, 6}}, // four of nine crashed, inputs still mixed
	} {
		var rounds, msgs float64
		for t := 0; t < trials; t++ {
			inputs := make([]int, tc.n)
			for i := range inputs {
				inputs[i] = i % 2
			}
			res, err := leanconsensus.SimulateMessagePassing(leanconsensus.MessagePassingConfig{
				Inputs: inputs,
				Crash:  tc.crashes,
				Seed:   uint64(1000*tc.n + t),
			})
			if err != nil {
				log.Fatal(err)
			}
			rounds += float64(res.Rounds)
			msgs += float64(res.Messages) / float64(tc.n-len(tc.crashes))
		}
		fmt.Printf("%4d  %8d  %12.2f  %14.0f\n",
			tc.n, len(tc.crashes), rounds/trials, msgs/trials)
	}

	fmt.Println("\neach emulated register operation costs two quorum phases (~4n messages);")
	fmt.Println("rounds stay logarithmic, and a crashed minority only removes voters.")

	// Leader election over the same machinery (footnote 2's tournament).
	res, err := leanconsensus.Elect(8, leanconsensus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbonus: id consensus among 8 processes elected process %d\n", res.Winner)
}
