// Bounded space: the Section 8 combined protocol.
//
// Plain lean-consensus needs unbounded arrays. The combined protocol cuts
// it off after rmax rounds and falls back to a bounded-space backup
// consensus, entering the backup with probability that shrinks
// exponentially in rmax (Theorem 12's tail), so the expected work stays
// O(log n) (Theorem 15). The example sweeps rmax with a deliberately slow
// (two-point) noise distribution so the backup actually fires at small
// rmax, then shows it going quiet as rmax grows.
//
//	go run ./examples/boundedspace
package main

import (
	"fmt"
	"log"

	"leanconsensus"
)

func main() {
	const n = 32
	const trials = 300
	// The Theorem 13 lower-bound distribution keeps the race tight, which
	// is exactly when the cutoff matters.
	noise := leanconsensus.TwoPoint(1, 2)

	fmt.Printf("%6s  %12s  %14s  %12s\n", "rmax", "backup rate", "mean ops/proc", "agreement")
	for _, rmax := range []int{2, 3, 4, 6, 8, 12, 16} {
		backupTrials := 0
		totalOps := int64(0)
		for t := 0; t < trials; t++ {
			res, err := leanconsensus.Simulate(n,
				leanconsensus.WithDistribution(noise),
				leanconsensus.WithBoundedSpace(rmax),
				leanconsensus.WithSeed(uint64(rmax*10000+t)),
			)
			if err != nil {
				log.Fatal(err)
			}
			if res.BackupUsed > 0 {
				backupTrials++
			}
			for _, ops := range res.OpsPerProcess {
				totalOps += ops
			}
			// Simulate already fails loudly on disagreement; reaching here
			// means all deciders agreed, whether they decided in the
			// racing counters or in the backup.
		}
		fmt.Printf("%6d  %11.1f%%  %14.1f  %12s\n",
			rmax,
			100*float64(backupTrials)/float64(trials),
			float64(totalOps)/float64(trials*n),
			"ok")
	}
	fmt.Println("\nthe backup rate collapses as rmax grows; with rmax = O(log^2 n) the")
	fmt.Println("protocol is bounded-space yet almost always finishes inside the racing")
	fmt.Println("counters, keeping O(log n) expected operations (Theorem 15).")
}
