package leanconsensus

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// CorrelationHeader is the request header carrying a caller-chosen
// correlation ID on POST /v1/jobs and /v1/campaigns. The service stamps
// the value as the Parent of the admitted work's root journal events,
// so a coordinator fanning work out across processes can reconstruct
// the whole tree from the merged event streams.
const CorrelationHeader = "X-Lean-Correlation"

// TenantHeader is the request header naming the submitting tenant on
// POST /v1/jobs and /v1/campaigns. Tenanted submissions are admitted
// under the service's per-tenant fair-share gate: each tenant is
// guaranteed its share of the high-water mark even while another tenant
// saturates the queue, and the tenant label rides on the work's journal
// events and status bodies.
const TenantHeader = "X-Lean-Tenant"

// This file is the typed Go client for the leanserve HTTP service
// (internal/server, cmd/leanserve). The JSON shapes here mirror the
// server's wire contract; the server's end-to-end tests drive the real
// service through this client, so the two cannot drift silently.

// Job lifecycle states reported by JobStatus.Status.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobSpec describes one batched consensus job: Instances independent
// lean-consensus instances of N processes each, run under the named
// execution model and noise distribution, deterministically from Seed.
// Zero values select server-side defaults; names resolve through the
// server's registries (see Client.Models).
type JobSpec struct {
	Model   string `json:"model,omitempty"`
	Variant string `json:"variant,omitempty"`
	Dist    string `json:"dist,omitempty"`
	// Adversary names an adversarial schedule, optionally parameterized
	// ("antileader:m=8"); see Client.Adversaries for the registry. Models
	// outside the adversary axis reject a named schedule with a 400.
	Adversary string `json:"adversary,omitempty"`
	N         int    `json:"n,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Instances int    `json:"instances"`
	// Correlation, when non-empty, is sent as the X-Lean-Correlation
	// header on submission (the batch uses the first non-empty value):
	// the service stamps it as the Parent of the job's root journal
	// events. It is transport metadata, never part of the request body.
	Correlation string `json:"-"`
	// Tenant, when non-empty, is sent as the X-Lean-Tenant header on
	// submission (the batch uses the first non-empty value): the service
	// admits the batch under that tenant's fair share and labels its
	// journal events. Transport metadata, never part of the request body.
	Tenant string `json:"-"`
}

// JobStatus is one job's lifecycle state, live progress, and — once
// finished — results.
type JobStatus struct {
	ID      string       `json:"id"`
	Status  string       `json:"status"`
	Created time.Time    `json:"created"`
	Tenant  string       `json:"tenant,omitempty"`
	Specs   []SpecStatus `json:"specs"`
	Error   string       `json:"error,omitempty"`
}

// Finished reports whether the job reached a terminal state.
func (s *JobStatus) Finished() bool { return s.Status == JobDone || s.Status == JobFailed }

// SpecStatus is one spec's progress within a job: Done of Instances
// completed, broken down per arena shard, plus the final Result once the
// spec has run.
type SpecStatus struct {
	Spec      JobSpec     `json:"spec"`
	Instances int         `json:"instances"`
	Done      int64       `json:"done"`
	PerShard  []int64     `json:"perShard"`
	Result    *SpecResult `json:"result,omitempty"`
}

// SpecResult aggregates one executed spec. All fields except ElapsedMS
// and Throughput are pure functions of the spec and replay exactly.
type SpecResult struct {
	Model          string  `json:"model"`
	Variant        string  `json:"variant"`
	Dist           string  `json:"dist"`
	Adversary      string  `json:"adversary"`
	N              int     `json:"n"`
	Seed           uint64  `json:"seed"`
	Instances      int     `json:"instances"`
	Decided0       int64   `json:"decided0"`
	Decided1       int64   `json:"decided1"`
	Errors         int64   `json:"errors"`
	Ops            int64   `json:"ops"`
	RoundSum       int64   `json:"roundSum"`
	MeanFirstRound float64 `json:"meanFirstRound"`
	MaxRound       int     `json:"maxRound"`
	ElapsedMS      float64 `json:"elapsedMs"`
	Throughput     float64 `json:"throughput"`
}

// Catalog lists what the service's registries accept in a JobSpec.
type Catalog struct {
	DefaultModel string        `json:"defaultModel"`
	Models       []ModelInfo   `json:"models"`
	Variants     []VariantInfo `json:"variants"`
	Dists        []string      `json:"dists"`
}

// ModelInfo describes one registered execution model.
type ModelInfo struct {
	Name  string `json:"name"`
	Brief string `json:"brief"`
}

// VariantInfo describes one registered algorithm variant; only servable
// variants are accepted in job specs.
type VariantInfo struct {
	Name     string `json:"name"`
	Servable bool   `json:"servable"`
}

// AdversaryCatalog lists the service's registered adversarial schedules
// (GET /v1/adversaries).
type AdversaryCatalog struct {
	DefaultAdversary string          `json:"defaultAdversary"`
	Adversaries      []AdversaryInfo `json:"adversaries"`
}

// AdversaryInfo describes one registered adversarial schedule: its
// parameter schema (specs are written "name:param=value:param=value")
// and the execution models that can run it.
type AdversaryInfo struct {
	Name      string           `json:"name"`
	Canonical string           `json:"canonical"`
	Brief     string           `json:"brief"`
	Params    []AdversaryParam `json:"params,omitempty"`
	Models    []string         `json:"models"`
}

// AdversaryParam is one named parameter of an adversarial schedule;
// Integer parameters only accept whole values.
type AdversaryParam struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Integer bool    `json:"integer,omitempty"`
}

// Health is the service's liveness report. Version and Revision identify
// the build the service is running; QueueDepth counts jobs plus
// campaigns admitted but still waiting for an execution slot, and
// Goroutines and GCPauseP99Ms are process-level runtime vitals. Tenants
// counts tenants with queued work at the admission gate. Node is
// the journal node identity the service stamps on its events, and
// JournalDropped counts events its persistence follower lost to ring
// wraps — nonzero means the durable journal has sequence gaps.
type Health struct {
	Status          string  `json:"status"`
	Version         string  `json:"version"`
	Revision        string  `json:"revision"`
	Node            string  `json:"node,omitempty"`
	QueuedInstances int64   `json:"queuedInstances"`
	Jobs            int     `json:"jobs"`
	Campaigns       int     `json:"campaigns"`
	QueueDepth      int     `json:"queueDepth"`
	Tenants         int     `json:"tenants,omitempty"`
	Goroutines      int     `json:"goroutines"`
	GCPauseP99Ms    float64 `json:"gcPauseP99Ms"`
	JournalDropped  uint64  `json:"journalDropped,omitempty"`
}

// Event is one operations-journal entry, mirroring the server's
// internal/obslog wire shape. Kind is a wire-stable name: job.admit,
// job.start, job.done, job.shed, campaign.start, campaign.cell.done,
// campaign.checkpoint, campaign.resume, campaign.done, arena.drain, or
// server.request. ID is the correlation ID of the entity the event is
// about (job/campaign ID, cell key); Parent chains it to its owner —
// a campaign's cells carry the campaign ID here — so a campaign's full
// lifecycle tree reconstructs from the event stream alone.
type Event struct {
	Seq    uint64      `json:"seq"`
	TS     int64       `json:"ts"` // Unix nanoseconds
	Kind   string      `json:"kind"`
	ID     string      `json:"id,omitempty"`
	Parent string      `json:"parent,omitempty"`
	Node   string      `json:"node,omitempty"` // emitting process's identity
	Labels EventLabels `json:"labels"`
}

// EventLabels carries an event's workload axes (model × dist ×
// adversary × n, the paper's experiment coordinates) and kind-specific
// Count/Detail payload.
type EventLabels struct {
	Model     string `json:"model,omitempty"`
	Dist      string `json:"dist,omitempty"`
	Adversary string `json:"adversary,omitempty"`
	N         int    `json:"n,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Count     int64  `json:"count,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// EventPage is one journal replay window: events with Seq > the
// requested position, oldest first, and the position to poll from next.
// A gap between the requested position and Events[0].Seq means the
// server's ring wrapped (or its retention trimmed) past this reader.
// First is the oldest sequence number the service can still serve, from
// its on-disk store when the journal is durable, else its ring.
type EventPage struct {
	Events []Event `json:"events"`
	Next   uint64  `json:"next"`
	First  uint64  `json:"first,omitempty"`
}

// EventQuery selects journal events for Client.QueryEvents. The zero
// value replays everything the service retains (up to the server's page
// limit). Kind/ID/Parent are equality filters; After/Before bound the
// event timestamp (half-open: After ≤ TS < Before); Limit caps the page
// (0 selects the server default of 4096, hard max 65536).
type EventQuery struct {
	Since  uint64
	Kind   string
	ID     string
	Parent string
	After  time.Time
	Before time.Time
	Limit  int
}

// encode renders the query string, always including since so the
// request selects the one-shot JSON query mode.
func (q *EventQuery) encode() string {
	v := url.Values{}
	v.Set("since", strconv.FormatUint(q.Since, 10))
	if q.Kind != "" {
		v.Set("kind", q.Kind)
	}
	if q.ID != "" {
		v.Set("id", q.ID)
	}
	if q.Parent != "" {
		v.Set("parent", q.Parent)
	}
	if !q.After.IsZero() {
		v.Set("after", q.After.Format(time.RFC3339Nano))
	}
	if !q.Before.IsZero() {
		v.Set("before", q.Before.Format(time.RFC3339Nano))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	return v.Encode()
}

// TraceEvent is one flight-recorder event, mirroring the server's
// internal/trace.Event wire shape. Which fields are meaningful depends
// on Kind: "start" carries the adversary's start delay in Delay, "op"
// the step delay and the value read or written, "round" the new round
// with the leader in Value (-1 when the model has no global view),
// "decide" the decided bit, "halt" a process death, and "preempt" the
// incoming process in Value.
type TraceEvent struct {
	Time  float64 `json:"t"`
	Delay float64 `json:"d"`
	Step  int64   `json:"j"`
	Proc  int32   `json:"p"`
	Round int32   `json:"r"`
	Value int32   `json:"v"`
	Kind  string  `json:"k"`
}

// TraceInstance is one captured execution: identifying fields, the
// deterministic outcome summary, and the recorded event window (oldest
// first). Re-running the same (model, key, n, seed, config) replays the
// exact same events.
type TraceInstance struct {
	Key        string       `json:"key"`
	Model      string       `json:"model"`
	N          int          `json:"n"`
	Seed       uint64       `json:"seed"`
	Err        string       `json:"err,omitempty"`
	FirstRound int          `json:"first_round"`
	LastRound  int          `json:"last_round"`
	Ops        int64        `json:"ops"`
	SimTime    float64      `json:"sim_time"`
	Dropped    int64        `json:"dropped"`
	Events     []TraceEvent `json:"events"`
}

// JobTraces is the GET /v1/jobs/{id}/trace body: one capture block per
// spec in submission order, most interesting captures first within each
// block. Blocks are empty until the spec finishes, and stay empty when
// the job was submitted without tracing (SubmitJobsTraced).
type JobTraces struct {
	ID     string      `json:"id"`
	Status string      `json:"status"`
	Specs  []SpecTrace `json:"specs"`
}

// SpecTrace is one spec's flight-recorder captures.
type SpecTrace struct {
	Spec  JobSpec         `json:"spec"`
	Trace []TraceInstance `json:"trace,omitempty"`
}

// CampaignStatus is one campaign's lifecycle state, live progress, and —
// once finished — its deterministic report.
type CampaignStatus struct {
	ID       string    `json:"id"`
	Status   string    `json:"status"`
	Created  time.Time `json:"created"`
	Name     string    `json:"name,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	SpecHash string    `json:"specHash"`

	CellsDone      int   `json:"cellsDone"`
	CellsTotal     int   `json:"cellsTotal"`
	InstancesDone  int64 `json:"instancesDone"`
	InstancesTotal int64 `json:"instancesTotal"`

	Error  string          `json:"error,omitempty"`
	Report *CampaignReport `json:"report,omitempty"`
}

// Finished reports whether the campaign reached a terminal state.
func (s *CampaignStatus) Finished() bool { return s.Status == JobDone || s.Status == JobFailed }

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("leanserve: HTTP %d: %s", e.StatusCode, e.Message)
}

// OverloadedError is a 429: the service shed the submission. Retry no
// sooner than RetryAfter.
type OverloadedError struct {
	RetryAfter time.Duration
	Message    string
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("leanserve: overloaded (retry after %v): %s", e.RetryAfter, e.Message)
}

// Client is a typed client for a leanserve service. The zero value is
// not usable; construct with NewClient.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is WaitJob's cadence (default 25ms).
	PollInterval time.Duration
}

// NewClient returns a client for the service rooted at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// httpClient returns the effective transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a 2xx JSON body into out. Non-2xx
// responses become *OverloadedError (429) or *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return responseError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError converts a non-2xx response into a typed error.
func responseError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return &OverloadedError{RetryAfter: retry, Message: msg}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// SubmitJobs submits one batch of job specs and returns the job ID. The
// batch is admitted or shed as a unit: on overload the typed
// *OverloadedError carries the service's Retry-After hint. The request
// body is byte-identical to SubmitJobsTraced with traceK 0.
func (c *Client) SubmitJobs(ctx context.Context, specs ...JobSpec) (string, error) {
	return c.SubmitJobsTraced(ctx, 0, specs...)
}

// SubmitJobsTraced submits one batch of job specs with flight-recorder
// tracing armed: the service captures the traceK most interesting
// instances per arena shard (violations first, then the deepest rounds)
// for each spec, retrievable with JobTrace once the job runs. traceK
// must be within the service's budget cap (64); 0 degrades to an
// untraced SubmitJobs.
func (c *Client) SubmitJobsTraced(ctx context.Context, traceK int, specs ...JobSpec) (string, error) {
	body, err := json.Marshal(struct {
		Jobs  []JobSpec `json:"jobs"`
		Trace int       `json:"trace,omitempty"`
	}{Jobs: specs, Trace: traceK})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	for _, spec := range specs {
		if spec.Correlation != "" {
			req.Header.Set(CorrelationHeader, spec.Correlation)
			break
		}
	}
	for _, spec := range specs {
		if spec.Tenant != "" {
			req.Header.Set(TenantHeader, spec.Tenant)
			break
		}
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// JobTrace fetches one job's flight-recorder captures. It answers at any
// lifecycle stage; capture blocks appear as specs finish.
func (c *Client) JobTrace(ctx context.Context, id string) (*JobTraces, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	var jt JobTraces
	if err := c.do(req, &jt); err != nil {
		return nil, err
	}
	return &jt, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls until the job finishes or ctx expires. A failed job
// returns its final status together with a non-nil error.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Finished() {
			return st, jobError(st)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// jobError maps a failed terminal status to an error.
func jobError(st *JobStatus) error {
	if st.Status == JobFailed {
		return fmt.Errorf("leanserve: job %s failed: %s", st.ID, st.Error)
	}
	return nil
}

// streamEvents subscribes to an SSE endpoint and calls each for every
// event payload; each returning true ends the stream as successfully
// terminal. Both StreamJob and StreamCampaign are this loop with a
// different payload type.
func (c *Client) streamEvents(ctx context.Context, path string, each func(event string, data []byte) (bool, error)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	// The terminal "done" event carries the whole final status on one
	// data line; for a maximal legal campaign (4096 cells, ~450 bytes of
	// JSON each) that is ~2 MB, so the line cap must sit well above it.
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		case line == "":
			if data.Len() == 0 {
				continue
			}
			done, err := each(event, data.Bytes())
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			data.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("leanserve: stream ended without a done event")
}

// StreamJob subscribes to the job's SSE progress stream, calling fn
// (when non-nil) for every progress snapshot, and returns the final
// status carried by the terminal "done" event. A failed job returns its
// status together with a non-nil error, exactly like WaitJob.
func (c *Client) StreamJob(ctx context.Context, id string, fn func(JobStatus)) (*JobStatus, error) {
	var final *JobStatus
	err := c.streamEvents(ctx, "/v1/jobs/"+id+"/stream", func(event string, data []byte) (bool, error) {
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return false, fmt.Errorf("leanserve: bad stream payload: %v", err)
		}
		if event == "done" {
			final = &st
			return true, nil
		}
		if fn != nil {
			fn(st)
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return final, jobError(final)
}

// SubmitCampaign submits one campaign spec and returns the campaign ID.
// The whole grid is admitted or shed as a unit: on overload the typed
// *OverloadedError carries the service's Retry-After hint, and an
// oversized grid comes back as a 400 *APIError before anything runs.
func (c *Client) SubmitCampaign(ctx context.Context, spec CampaignSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if spec.Correlation != "" {
		req.Header.Set(CorrelationHeader, spec.Correlation)
	}
	if spec.Tenant != "" {
		req.Header.Set(TenantHeader, spec.Tenant)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Campaign fetches one campaign's status (and, once finished, report).
func (c *Client) Campaign(ctx context.Context, id string) (*CampaignStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/campaigns/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st CampaignStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitCampaign polls until the campaign finishes or ctx expires. A
// failed campaign returns its final status together with a non-nil
// error.
func (c *Client) WaitCampaign(ctx context.Context, id string) (*CampaignStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		st, err := c.Campaign(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Finished() {
			return st, campaignError(st)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// campaignError maps a failed terminal status to an error.
func campaignError(st *CampaignStatus) error {
	if st.Status == JobFailed {
		return fmt.Errorf("leanserve: campaign %s failed: %s", st.ID, st.Error)
	}
	return nil
}

// StreamCampaign subscribes to the campaign's SSE progress stream,
// calling fn (when non-nil) for every cell-progress snapshot, and
// returns the final status carried by the terminal "done" event.
func (c *Client) StreamCampaign(ctx context.Context, id string, fn func(CampaignStatus)) (*CampaignStatus, error) {
	var final *CampaignStatus
	err := c.streamEvents(ctx, "/v1/campaigns/"+id+"/stream", func(event string, data []byte) (bool, error) {
		var st CampaignStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return false, fmt.Errorf("leanserve: bad stream payload: %v", err)
		}
		if event == "done" {
			final = &st
			return true, nil
		}
		if fn != nil {
			fn(st)
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return final, campaignError(final)
}

// Models fetches the service's registry catalog.
func (c *Client) Models(ctx context.Context) (*Catalog, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	var cat Catalog
	if err := c.do(req, &cat); err != nil {
		return nil, err
	}
	return &cat, nil
}

// Adversaries fetches the service's adversary registry catalog.
func (c *Client) Adversaries(ctx context.Context) (*AdversaryCatalog, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/adversaries", nil)
	if err != nil {
		return nil, err
	}
	var cat AdversaryCatalog
	if err := c.do(req, &cat); err != nil {
		return nil, err
	}
	return &cat, nil
}

// Health fetches the liveness report. Both "ok" (200) and "draining"
// (503) parse without error; inspect Health.Status.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, responseError(resp)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Events replays the service's operations journal from position since
// (0 replays the whole retained window — the on-disk history too, when
// the service runs with a journal directory). Pollers loop on the
// returned Next: page, err := c.Events(ctx, page.Next). Retention is
// finite, so a poller that falls behind sees a sequence gap rather than
// the discarded events; it is Events(ctx, since) with an empty query.
func (c *Client) Events(ctx context.Context, since uint64) (*EventPage, error) {
	return c.QueryEvents(ctx, EventQuery{Since: since})
}

// QueryEvents evaluates one event query against the service's journal —
// the on-disk store first (history beyond the in-memory ring, when the
// service is durable), then the ring — and returns the matching page in
// sequence order. Loop on Next to page through a large result; when the
// page came back full, Next is the last returned seq, else the journal
// tip.
func (c *Client) QueryEvents(ctx context.Context, q EventQuery) (*EventPage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/events?"+q.encode(), nil)
	if err != nil {
		return nil, err
	}
	var page EventPage
	if err := c.do(req, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// StreamEvents subscribes to the journal firehose (SSE), calling fn for
// every event from the moment of subscription until ctx is cancelled,
// which is the normal way to end the stream (the returned error is then
// ctx's error).
//
// The stream survives disconnects: on a transport failure the client
// reconnects with capped exponential backoff (250ms doubling to 5s),
// resuming from the last seen sequence number via ?since= so nothing
// the service still retains is missed, and deduplicating any overlap.
// What retention has discarded in the meantime surfaces as a Seq gap,
// exactly like a slow reader's ring wrap — the server never buffers for
// a disconnected consumer. An HTTP-level rejection (*APIError) is
// returned immediately: a service that answers 4xx/5xx is reachable and
// saying no, so retrying cannot help.
func (c *Client) StreamEvents(ctx context.Context, fn func(Event)) error {
	var last uint64
	seen := false // resume only after the first event: before that, "from now" is the contract
	backoff := 250 * time.Millisecond
	for {
		path := "/v1/events"
		if seen {
			path += "?since=" + strconv.FormatUint(last, 10)
		}
		err := c.streamEvents(ctx, path, func(event string, data []byte) (bool, error) {
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return false, err
			}
			if seen && e.Seq <= last {
				return false, nil // replayed overlap after a reconnect
			}
			last, seen = e.Seq, true
			backoff = 250 * time.Millisecond
			fn(e)
			return false, nil
		})
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", responseError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
