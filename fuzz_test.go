package leanconsensus_test

import (
	"testing"

	"leanconsensus"
)

// FuzzSimulateSafety fuzzes the public simulation entry point over seeds,
// input patterns, sizes and distribution choices, checking the full
// invariant battery (agreement, validity, Lemma 2, Lemma 4) on recorded
// histories. Run with `go test -fuzz FuzzSimulateSafety` for continuous
// fuzzing; the seed corpus below runs as part of the normal test suite.
func FuzzSimulateSafety(f *testing.F) {
	f.Add(uint64(1), uint8(0b0101), uint8(6), uint8(0))
	f.Add(uint64(42), uint8(0b1100), uint8(4), uint8(1))
	f.Add(uint64(7), uint8(0b1111), uint8(8), uint8(2))
	f.Add(uint64(99), uint8(0b0001), uint8(2), uint8(3))
	f.Add(uint64(3), uint8(0b1010), uint8(5), uint8(4))

	dists := []leanconsensus.Distribution{
		leanconsensus.Exponential(1),
		leanconsensus.Uniform(0, 2),
		leanconsensus.Geometric(0.5),
		leanconsensus.TwoPoint(1, 2),
		leanconsensus.Normal(1, 0.2, 0, 2),
	}

	f.Fuzz(func(t *testing.T, seed uint64, pattern uint8, nRaw uint8, distIdx uint8) {
		n := int(nRaw)%8 + 1
		inputs := make([]int, n)
		ones := 0
		for i := range inputs {
			inputs[i] = int(pattern>>(i%8)) & 1
			ones += inputs[i]
		}
		d := dists[int(distIdx)%len(dists)]
		res, err := leanconsensus.Simulate(n,
			leanconsensus.WithInputs(inputs),
			leanconsensus.WithDistribution(d),
			leanconsensus.WithSeed(seed),
			leanconsensus.WithRecording(),
		)
		if err != nil {
			t.Fatalf("seed=%d inputs=%v dist=%v: %v", seed, inputs, d, err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Fatalf("INVARIANT VIOLATION seed=%d inputs=%v dist=%v: %v", seed, inputs, d, err)
		}
		if ones == 0 && res.Value != 0 {
			t.Fatalf("validity: all-zero inputs decided %d", res.Value)
		}
		if ones == n && res.Value != 1 {
			t.Fatalf("validity: all-one inputs decided %d", res.Value)
		}
	})
}
