package leanconsensus_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"leanconsensus"
	"leanconsensus/internal/campaign"
	"leanconsensus/internal/engine"
	"leanconsensus/internal/server"
)

// FuzzSimulateSafety fuzzes the public simulation entry point over seeds,
// input patterns, sizes and distribution choices, checking the full
// invariant battery (agreement, validity, Lemma 2, Lemma 4) on recorded
// histories. Run with `go test -fuzz FuzzSimulateSafety` for continuous
// fuzzing; the seed corpus below runs as part of the normal test suite.
func FuzzSimulateSafety(f *testing.F) {
	f.Add(uint64(1), uint8(0b0101), uint8(6), uint8(0))
	f.Add(uint64(42), uint8(0b1100), uint8(4), uint8(1))
	f.Add(uint64(7), uint8(0b1111), uint8(8), uint8(2))
	f.Add(uint64(99), uint8(0b0001), uint8(2), uint8(3))
	f.Add(uint64(3), uint8(0b1010), uint8(5), uint8(4))

	dists := []leanconsensus.Distribution{
		leanconsensus.Exponential(1),
		leanconsensus.Uniform(0, 2),
		leanconsensus.Geometric(0.5),
		leanconsensus.TwoPoint(1, 2),
		leanconsensus.Normal(1, 0.2, 0, 2),
	}

	f.Fuzz(func(t *testing.T, seed uint64, pattern uint8, nRaw uint8, distIdx uint8) {
		n := int(nRaw)%8 + 1
		inputs := make([]int, n)
		ones := 0
		for i := range inputs {
			inputs[i] = int(pattern>>(i%8)) & 1
			ones += inputs[i]
		}
		d := dists[int(distIdx)%len(dists)]
		res, err := leanconsensus.Simulate(n,
			leanconsensus.WithInputs(inputs),
			leanconsensus.WithDistribution(d),
			leanconsensus.WithSeed(seed),
			leanconsensus.WithRecording(),
		)
		if err != nil {
			t.Fatalf("seed=%d inputs=%v dist=%v: %v", seed, inputs, d, err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Fatalf("INVARIANT VIOLATION seed=%d inputs=%v dist=%v: %v", seed, inputs, d, err)
		}
		if ones == 0 && res.Value != 0 {
			t.Fatalf("validity: all-zero inputs decided %d", res.Value)
		}
		if ones == n && res.Value != 1 {
			t.Fatalf("validity: all-one inputs decided %d", res.Value)
		}
	})
}

// oversizedAdversaryAxis builds a campaign spec whose adversaries × seeds
// product exceeds the cell limit using only registered names, so the
// failure must be the limit gate, not name resolution.
func oversizedAdversaryAxis() string {
	var advs, seeds []string
	for i := 1; i <= 70; i++ {
		advs = append(advs, fmt.Sprintf("%q", fmt.Sprintf("random:seed=%d", i)))
		seeds = append(seeds, fmt.Sprintf("%d", i))
	}
	return fmt.Sprintf(`{"adversaries":[%s],"seeds":[%s],"reps":1}`,
		strings.Join(advs, ","), strings.Join(seeds, ","))
}

// FuzzJobSpecDecode fuzzes the serving layer's job-spec JSON decoder
// (server.DecodeSubmit, the body of POST /v1/jobs). Hostile input —
// malformed JSON, unknown fields, out-of-range n or instance counts,
// unregistered model/variant/dist names — must come back as an error
// (the handler's 400), never a panic, and anything the decoder accepts
// must be a batch the engine registries fully resolved within the wire
// limits.
func FuzzJobSpecDecode(f *testing.F) {
	f.Add(`{"jobs":[{"instances":10}]}`)
	f.Add(`{"jobs":[{"model":"sched","dist":"exponential","n":8,"seed":1,"instances":100}]}`)
	f.Add(`{"jobs":[{"model":"hybrid","instances":5},{"model":"msgnet","dist":"two-point","instances":5}]}`)
	f.Add(`{"jobs":[{"model":"quantum","instances":1}]}`)
	f.Add(`{"jobs":[{"variant":"combined","instances":1}]}`)
	f.Add(`{"jobs":[{"adversary":"antileader:m=8","instances":10}]}`)
	f.Add(`{"jobs":[{"model":"hybrid","adversary":"random:m=1:seed=2","instances":1}]}`)
	f.Add(`{"jobs":[{"model":"msgnet","adversary":"antileader","instances":1}]}`)
	f.Add(`{"jobs":[{"adversary":"antileader:m=","instances":1}]}`)
	f.Add(`{"jobs":[{"adversary":"sticky","instances":1}]}`)
	f.Add(`{"jobs":[{"adversary":"bogus","instances":1}]}`)
	f.Add(`{"jobs":[{"adversary":"none","model":"msgnet","instances":1}]}`)
	f.Add(`{"jobs":[{"n":-3,"instances":1}]}`)
	f.Add(`{"jobs":[{"n":1000000,"instances":1}]}`)
	f.Add(`{"jobs":[{"instances":0}]}`)
	f.Add(`{"jobs":[]}`)
	f.Add(`{"jobs":[{"instances":1,"bogus":7}]}`)
	f.Add(`{"jobs": [`)
	f.Add(`{"jobs":[{"instances":1}]} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add("\x00\xff\xfe")

	f.Fuzz(func(t *testing.T, body string) {
		batch, err := server.DecodeSubmit(strings.NewReader(body), server.DefaultMaxBatch)
		if err != nil {
			if batch != nil {
				t.Fatalf("decoder returned both a batch and error %v", err)
			}
			return
		}
		if len(batch.Jobs) == 0 || len(batch.Jobs) != len(batch.Specs) {
			t.Fatalf("accepted batch is malformed: %d jobs, %d specs", len(batch.Jobs), len(batch.Specs))
		}
		for i, job := range batch.Jobs {
			if job.Model == nil {
				t.Fatalf("job %d accepted with unresolved model: %+v", i, job)
			}
			if job.Noise == nil && !engine.IgnoresNoise(job.Model) {
				t.Fatalf("job %d accepted with unresolved noise for noisy model %q", i, job.ModelName)
			}
			if job.N < 1 || job.N > engine.MaxWireN {
				t.Fatalf("job %d accepted with n=%d outside [1, %d]", i, job.N, engine.MaxWireN)
			}
			if job.Instances < 1 || job.Instances > engine.MaxWireInstances {
				t.Fatalf("job %d accepted with instances=%d outside [1, %d]",
					i, job.Instances, engine.MaxWireInstances)
			}
			if job.VariantName != engine.ServableVariant {
				t.Fatalf("job %d accepted with unservable variant %q", i, job.VariantName)
			}
			if job.AdvName == "" {
				t.Fatalf("job %d accepted with no adversary label", i)
			}
			if job.Adversary != nil && !engine.AcceptsAdversary(job.Model, job.Adversary) {
				t.Fatalf("job %d accepted adversary %q the model %q cannot run",
					i, job.AdvName, job.ModelName)
			}
			if _, ok := job.Model.(engine.Adversarial); !ok && job.AdvName != engine.NoAdversary {
				t.Fatalf("job %d: model %q outside the adversary axis carries label %q",
					i, job.ModelName, job.AdvName)
			}
		}
	})
}

// FuzzCampaignSpecDecode fuzzes the campaign spec decoder
// (campaign.DecodeSpec, the body of POST /v1/campaigns). Hostile input —
// malformed JSON, unknown fields, unregistered names, out-of-range reps,
// and above all oversized grids — must come back as an error (a typed
// *campaign.LimitError for anything over the wire limits), never a panic
// or an attempt to materialize the named grid; anything the decoder
// accepts must be a campaign whose every cell the engine registries
// fully resolved within the limits.
func FuzzCampaignSpecDecode(f *testing.F) {
	f.Add(`{"reps":10}`)
	f.Add(`{"name":"fig1","models":["sched"],"dists":["exponential","uniform","normal","geometric","two-point","delayed"],"ns":[1,10,100],"seeds":[1],"reps":50}`)
	f.Add(`{"models":["hybrid","sched"],"dists":["exponential","uniform"],"ns":[4],"reps":3}`)
	f.Add(`{"models":["nope"],"reps":1}`)
	f.Add(`{"dists":["none"],"reps":1}`)
	f.Add(`{"ns":[0,-1],"reps":1}`)
	f.Add(`{"ns":[1000000],"reps":1}`)
	f.Add(`{"seeds":[18446744073709551615],"reps":1}`)
	f.Add(`{"reps":1000000,"ns":[4,8]}`)
	f.Add(`{"reps":0}`)
	f.Add(`{"reps":1,"bogus":7}`)
	f.Add(`{"reps":1} trailing`)
	f.Add(`{"dists":["two-point","twopoint"],"reps":1}`)
	f.Add(`{"adversaries":["zero","antileader:m=8","stagger:gap=2"],"reps":2}`)
	f.Add(`{"models":["msgnet"],"adversaries":["zero","antileader:m=2"],"reps":1}`)
	f.Add(`{"models":["hybrid"],"adversaries":["halfsplit"],"reps":1}`)
	f.Add(`{"adversaries":["antileader:m="],"reps":1}`)
	f.Add(`{"adversaries":["antileader","anti-leader:m=1"],"reps":1}`)
	f.Add(`{"adversaries":["bogus"],"reps":1}`)
	// An oversized adversary axis (70 × 70 seeds > 4096 cells) must come
	// back as the typed *LimitError, never an attempt at the grid.
	f.Add(oversizedAdversaryAxis())
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add("\x00\xff\xfe")

	f.Fuzz(func(t *testing.T, body string) {
		c, err := campaign.DecodeSpec(strings.NewReader(body))
		if err != nil {
			if c != nil {
				t.Fatalf("decoder returned both a campaign and error %v", err)
			}
			var le *campaign.LimitError
			if errors.As(err, &le) && le.Got <= le.Max {
				t.Fatalf("limit error for a value within the limit: %+v", le)
			}
			return
		}
		if len(c.Cells) == 0 || int64(len(c.Cells)) > campaign.MaxWireCells {
			t.Fatalf("accepted campaign has %d cells", len(c.Cells))
		}
		if c.Instances < 1 || c.Instances > campaign.MaxWireInstances {
			t.Fatalf("accepted campaign has %d instances", c.Instances)
		}
		if len(c.Hash) != 64 {
			t.Fatalf("accepted campaign has bad hash %q", c.Hash)
		}
		seen := make(map[string]bool)
		for _, cell := range c.Cells {
			if seen[cell.Key] {
				t.Fatalf("duplicate cell %q survived dedup", cell.Key)
			}
			seen[cell.Key] = true
			job := cell.Job
			if job.Model == nil {
				t.Fatalf("cell %q accepted with unresolved model", cell.Key)
			}
			if job.Noise == nil && !engine.IgnoresNoise(job.Model) {
				t.Fatalf("cell %q accepted with unresolved noise for noisy model %q", cell.Key, job.ModelName)
			}
			if job.N < 1 || job.N > engine.MaxWireN {
				t.Fatalf("cell %q accepted with n=%d", cell.Key, job.N)
			}
			if job.Instances != c.Spec.Reps {
				t.Fatalf("cell %q carries %d instances, spec says %d", cell.Key, job.Instances, c.Spec.Reps)
			}
			if job.AdvName == "" {
				t.Fatalf("cell %q accepted with no adversary label", cell.Key)
			}
			if _, ok := job.Model.(engine.Adversarial); !ok && job.AdvName != engine.NoAdversary {
				t.Fatalf("cell %q: model %q outside the adversary axis carries label %q",
					cell.Key, job.ModelName, job.AdvName)
			}
		}
	})
}
