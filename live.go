package leanconsensus

import (
	"context"
	"time"

	"leanconsensus/internal/live"
)

// LiveConfig describes a consensus run on real goroutines with
// sync/atomic registers. The OS and Go scheduler provide the noise; an
// optional sampled sleep per operation injects more.
type LiveConfig struct {
	// Inputs holds one input bit per goroutine.
	Inputs []int
	// RMax is the lean-consensus cutoff round of the bounded-space
	// protocol (0 selects max(16, log2(n)^2) per Theorem 15).
	RMax int
	// SleepNoise, when non-nil, injects a sampled sleep before every
	// shared-memory operation.
	SleepNoise Distribution
	// SleepUnit scales sleep samples (default 1µs).
	SleepUnit time.Duration
	// Seed fixes the injected noise streams.
	Seed uint64
	// Yield inserts runtime.Gosched between operations, increasing
	// interleaving on machines with few cores.
	Yield bool
}

// LiveResult reports a live run.
type LiveResult struct {
	// Value is the agreed bit.
	Value int
	// OpsPerProcess holds per-goroutine operation counts.
	OpsPerProcess []int64
	// Rounds is the largest racing-counters round reached.
	Rounds int
	// BackupUsed counts goroutines that fell back to the backup protocol.
	BackupUsed int
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// Live runs one consensus among len(cfg.Inputs) goroutines and blocks
// until every goroutine has decided or ctx is cancelled.
func Live(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	res, err := live.Run(ctx, live.Config{
		Inputs:     cfg.Inputs,
		RMax:       cfg.RMax,
		SleepNoise: cfg.SleepNoise,
		SleepUnit:  cfg.SleepUnit,
		Seed:       cfg.Seed,
		Yield:      cfg.Yield,
	})
	if err != nil {
		return nil, err
	}
	out := &LiveResult{
		Value:         res.Value,
		OpsPerProcess: make([]int64, len(res.Procs)),
		Rounds:        res.MaxRound,
		BackupUsed:    res.BackupUsed,
		Elapsed:       res.Elapsed,
	}
	for i, p := range res.Procs {
		out.OpsPerProcess[i] = p.Ops
	}
	return out, nil
}
