package leanconsensus_test

import (
	"context"
	"fmt"
	"testing"

	"leanconsensus"
)

func TestArenaPublicAPI(t *testing.T) {
	a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{
		Shards:       4,
		Workers:      2,
		N:            8,
		Distribution: leanconsensus.Uniform(0, 2),
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bits := map[string]int{}
	values := map[string]int{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("order-%d", i)
		res, err := a.Propose(ctx, key, i%2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 0 && res.Value != 1 {
			t.Fatalf("key %s decided %d", key, res.Value)
		}
		if res.Shard != a.ShardFor(key) {
			t.Fatalf("key %s served by shard %d, routed to %d", key, res.Shard, a.ShardFor(key))
		}
		bits[key] = i % 2
		values[key] = res.Value
	}
	// Re-proposing a key with the same bit replays the same instance and
	// must agree with the first decision.
	for key, want := range values {
		res, err := a.Propose(ctx, key, bits[key])
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("key %s replayed to %d, first decided %d", key, res.Value, want)
		}
	}
	st := a.Stats()
	if st.Proposals == 0 || st.Decided0+st.Decided1 != st.Proposals || st.Errors != 0 {
		t.Errorf("stats inconsistent: %s", st)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput %v not positive", st.Throughput)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Propose(ctx, "late", 0); err == nil {
		t.Error("Propose after Close succeeded")
	}
}

func TestArenaBackendSelection(t *testing.T) {
	for _, backend := range []string{leanconsensus.BackendSched, leanconsensus.BackendHybrid, leanconsensus.BackendMsgNet} {
		a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{
			Shards: 2, N: 4, Seed: 5, Backend: backend,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		res, err := a.Propose(context.Background(), "k", 1)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Value != 0 && res.Value != 1 {
			t.Fatalf("%s decided %d", backend, res.Value)
		}
		a.Close()
	}
	if _, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{Backend: "bogus"}); err == nil {
		t.Error("NewArena accepted an unknown backend")
	}
}

// TestArenaTraces exercises the public flight-recorder surface: TraceK
// arms per-shard capture, Traces returns ranked instances with decoded
// event kinds, and an untraced arena returns nil.
func TestArenaTraces(t *testing.T) {
	run := func() []leanconsensus.TraceInstance {
		a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{
			Shards: 2, Workers: 1, N: 4, Seed: 9, TraceK: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 40; i++ {
			if _, err := a.Propose(ctx, fmt.Sprintf("t-%d", i), i%2); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		return a.Traces()
	}

	captures := run()
	if len(captures) == 0 || len(captures) > 4 {
		t.Fatalf("got %d captures, want 1..4 (TraceK=2 × 2 shards)", len(captures))
	}
	kinds := map[string]bool{}
	for _, inst := range captures {
		if inst.Model != leanconsensus.BackendSched || inst.N != 4 {
			t.Errorf("capture %q tagged model=%q n=%d", inst.Key, inst.Model, inst.N)
		}
		if len(inst.Events) == 0 {
			t.Errorf("capture %q has no events", inst.Key)
		}
		for _, ev := range inst.Events {
			kinds[ev.Kind] = true
		}
	}
	for _, want := range []string{"start", "op", "decide"} {
		if !kinds[want] {
			t.Errorf("no %q event in any capture (kinds seen: %v)", want, kinds)
		}
	}

	// Capture selection ranks only simulated quantities, so the same
	// workload yields the same captures regardless of scheduling.
	again := run()
	if len(again) != len(captures) {
		t.Fatalf("reran to %d captures, first run had %d", len(again), len(captures))
	}
	for i := range captures {
		if captures[i].Key != again[i].Key || len(captures[i].Events) != len(again[i].Events) {
			t.Errorf("capture %d differs across identical runs: %q/%d vs %q/%d",
				i, captures[i].Key, len(captures[i].Events), again[i].Key, len(again[i].Events))
		}
	}

	// Untraced arenas report nil, not empty.
	a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{Shards: 1, N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Propose(context.Background(), "k", 0); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if got := a.Traces(); got != nil {
		t.Errorf("untraced arena returned %d captures, want nil", len(got))
	}
}

func TestBackendsListsRegistry(t *testing.T) {
	names := leanconsensus.Backends()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{
		leanconsensus.BackendSched, leanconsensus.BackendHybrid, leanconsensus.BackendMsgNet,
	} {
		if !seen[want] {
			t.Errorf("Backends() = %v is missing %q", names, want)
		}
	}
}
