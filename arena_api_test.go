package leanconsensus_test

import (
	"context"
	"fmt"
	"testing"

	"leanconsensus"
)

func TestArenaPublicAPI(t *testing.T) {
	a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{
		Shards:       4,
		Workers:      2,
		N:            8,
		Distribution: leanconsensus.Uniform(0, 2),
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bits := map[string]int{}
	values := map[string]int{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("order-%d", i)
		res, err := a.Propose(ctx, key, i%2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 0 && res.Value != 1 {
			t.Fatalf("key %s decided %d", key, res.Value)
		}
		if res.Shard != a.ShardFor(key) {
			t.Fatalf("key %s served by shard %d, routed to %d", key, res.Shard, a.ShardFor(key))
		}
		bits[key] = i % 2
		values[key] = res.Value
	}
	// Re-proposing a key with the same bit replays the same instance and
	// must agree with the first decision.
	for key, want := range values {
		res, err := a.Propose(ctx, key, bits[key])
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("key %s replayed to %d, first decided %d", key, res.Value, want)
		}
	}
	st := a.Stats()
	if st.Proposals == 0 || st.Decided0+st.Decided1 != st.Proposals || st.Errors != 0 {
		t.Errorf("stats inconsistent: %s", st)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput %v not positive", st.Throughput)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Propose(ctx, "late", 0); err == nil {
		t.Error("Propose after Close succeeded")
	}
}

func TestArenaBackendSelection(t *testing.T) {
	for _, backend := range []string{leanconsensus.BackendSched, leanconsensus.BackendHybrid, leanconsensus.BackendMsgNet} {
		a, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{
			Shards: 2, N: 4, Seed: 5, Backend: backend,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		res, err := a.Propose(context.Background(), "k", 1)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Value != 0 && res.Value != 1 {
			t.Fatalf("%s decided %d", backend, res.Value)
		}
		a.Close()
	}
	if _, err := leanconsensus.NewArena(leanconsensus.ArenaConfig{Backend: "bogus"}); err == nil {
		t.Error("NewArena accepted an unknown backend")
	}
}

func TestBackendsListsRegistry(t *testing.T) {
	names := leanconsensus.Backends()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{
		leanconsensus.BackendSched, leanconsensus.BackendHybrid, leanconsensus.BackendMsgNet,
	} {
		if !seen[want] {
			t.Errorf("Backends() = %v is missing %q", names, want)
		}
	}
}
