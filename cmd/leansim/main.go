// Command leansim runs a single simulated lean-consensus execution and
// reports (optionally traces) it. It is the debugging companion to
// leanbench: one run, fully deterministic given -seed, with every knob of
// the noisy scheduling model exposed.
//
// Usage:
//
//	leansim -n 8 -dist exponential -seed 42 [-trace] [-failures 0.01]
//	        [-adversary NAME[:param=value...]] [-m BOUND]
//	        [-bounded RMAX] [-model sched|hybrid|msgnet] [-list]
//
// The -adversary flag resolves through the engine's adversary registry
// (see -list), so any registered adversarial schedule — parameterized
// like "antileader:m=8" — is available; -m is shorthand for the
// schedule's primary parameter. The default model, sched, exposes the
// full noisy-scheduling instrumentation (trace, invariant checking). Any
// other registered execution model runs one instance through the
// engine's model registry and reports its Result; models that accept
// adversaries (hybrid) run the schedule's form for that model, while
// models outside the adversary axis (msgnet) reject the flag with the
// engine's typed error.
//
// -trace works on every model: the default model prints its
// register-level operation history, while the others render the
// engine's flight-recorder timeline (internal/trace) — the same event
// stream the arena and server capture for their slowest instances.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"leanconsensus/internal/cli"
	"leanconsensus/internal/engine"
	"leanconsensus/internal/harness"
	"leanconsensus/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leansim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leansim", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of processes")
	distName := fs.String("dist", "exponential", "noise distribution (see -list)")
	seed := fs.Uint64("seed", 1, "random seed")
	failures := fs.Float64("failures", 0, "per-operation halting probability h(n)")
	advName := fs.String("adversary", "none", "adversarial schedule, e.g. antileader:m=8 (see -list)")
	m := fs.Float64("m", 1, "shorthand for the adversary's primary parameter (its delay bound or gap)")
	bounded := fs.Int("bounded", 0, "run the bounded-space protocol with this rmax (0: unbounded)")
	traceFlag := fs.Bool("trace", false, "print the full operation trace")
	optimized := fs.Bool("optimized", false, "run the elided-operations ablation variant")
	modelName := fs.String("model", engine.DefaultModel, "execution model (see -list)")
	list := fs.Bool("list", false, "list execution models and distributions, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leansim")
		return nil
	}

	if *list {
		cli.List(stdout)
		return nil
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	d, err := cli.Distribution(*distName)
	if err != nil {
		return err
	}

	model, err := cli.Model(*modelName)
	if err != nil {
		return err
	}

	// The adversary resolves through the engine's registry; -m is
	// shorthand for the schedule's primary parameter, kept for the
	// one-knob ergonomics the tool always had.
	mSet := false
	fs.Visit(func(f *flag.Flag) { mSet = mSet || f.Name == "m" })
	adv, err := cli.Adversary(*advName)
	if err != nil {
		return err
	}
	if mSet {
		if strings.Contains(*advName, ":") {
			return fmt.Errorf("-m and inline adversary parameters are mutually exclusive")
		}
		p, ok := engine.AdversaryPrimaryParam(*advName)
		if !ok {
			return fmt.Errorf("-m does not apply to adversary %q: it takes no parameters", adv.Name())
		}
		if adv, err = cli.Adversary(fmt.Sprintf("%s:%s=%g", *advName, p, *m)); err != nil {
			return err
		}
	}
	if err := engine.CheckAdversary(model, adv); err != nil {
		return err
	}

	if model.Name() != engine.DefaultModel {
		// Any non-default execution model: run one instance through the
		// registry. The sched-specific knobs below do not apply, so an
		// explicitly set one is an error rather than a silently wrong run;
		// likewise -dist for models that declare noise can't affect them.
		// The adversary is not sched-only any more: models that accept
		// adversaries run the schedule's own form (checked above).
		schedOnly := map[string]bool{
			"failures": true, "bounded": true, "optimized": true,
		}
		var ignored []string
		distSet := false
		fs.Visit(func(f *flag.Flag) {
			if schedOnly[f.Name] {
				ignored = append(ignored, "-"+f.Name)
			}
			if f.Name == "dist" {
				distSet = true
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("%s only apply to the sched execution model, not -model %s",
				strings.Join(ignored, ", "), model.Name())
		}
		if distSet && engine.IgnoresNoise(model) {
			return fmt.Errorf("-dist has no effect on -model %s: the model declares noise cannot affect it",
				model.Name())
		}
		// -trace arms the engine's flight recorder: every model emits the
		// same event vocabulary, so the timeline renders uniformly.
		var sess *engine.Session
		var rec *trace.Recorder
		if *traceFlag {
			sess = engine.NewSession()
			rec = trace.NewRecorder(1 << 16)
			sess.SetTrace(rec)
		}
		res, err := model.Run(engine.Spec{
			Key:       "leansim",
			N:         *n,
			Inputs:    harness.HalfInputs(*n),
			Noise:     d,
			Adversary: adv,
			Seed:      *seed,
		}, sess)
		if err != nil {
			return err
		}
		if rec != nil {
			err := trace.WriteTimeline(stdout, trace.Instance{
				Key:        "leansim",
				Model:      model.Name(),
				N:          *n,
				Seed:       *seed,
				FirstRound: res.FirstRound,
				LastRound:  res.LastRound,
				Ops:        res.Ops,
				SimTime:    res.SimTime,
				Dropped:    rec.Dropped(),
				Events:     rec.Events(),
			})
			if err != nil {
				return err
			}
		}
		header := fmt.Sprintf("n=%d model=%s", *n, model.Name())
		if !engine.IgnoresNoise(model) {
			header += fmt.Sprintf(" dist=%s", d)
		}
		if !adv.IsZero() {
			header += fmt.Sprintf(" adversary=%s", adv.Name())
		}
		fmt.Fprintf(stdout, "%s seed=%d\n", header, *seed)
		fmt.Fprintf(stdout, "decision: %d\n", res.Value)
		fmt.Fprintf(stdout, "rounds: first %d, last %d   total ops: %d   simulated time: %.4f\n",
			res.FirstRound, res.LastRound, res.Ops, res.SimTime)
		return nil
	}

	variant := harness.VariantLean
	switch {
	case *bounded > 0:
		variant = harness.VariantCombined
	case *optimized:
		variant = harness.VariantLeanOptimized
	}

	run, err := harness.RunSim(harness.SimConfig{
		N:           *n,
		ReadNoise:   d,
		Adversary:   adv.Sched(),
		FailureProb: *failures,
		Seed:        *seed,
		Variant:     variant,
		RMax:        *bounded,
		Record:      true,
	})
	if err != nil {
		return err
	}
	res := run.Res

	if *traceFlag {
		for _, ev := range run.History.Events {
			b, r, isLean := run.Layout.DecodeA(ev.Reg)
			loc := fmt.Sprintf("reg[%d]", ev.Reg)
			if isLean {
				loc = fmt.Sprintf("a%d[%d]", b, r)
			}
			fmt.Fprintf(stdout, "%12.6f  P%-3d %-5s %-8s = %d\n", ev.Time, ev.Proc, ev.Kind, loc, ev.Val)
		}
	}

	if adv.IsZero() {
		fmt.Fprintf(stdout, "n=%d dist=%s seed=%d\n", *n, d, *seed)
	} else {
		fmt.Fprintf(stdout, "n=%d dist=%s adversary=%s seed=%d\n", *n, d, adv.Name(), *seed)
	}
	if v, ok := res.Agreement(); ok && v >= 0 {
		fmt.Fprintf(stdout, "decision: %d\n", v)
	} else if res.AllHalted {
		fmt.Fprintf(stdout, "decision: none (all processes halted; last round %d)\n", res.MaxRound)
	}
	fmt.Fprintf(stdout, "first decision: proc %d at round %d (t=%.4f)\n",
		res.FirstDecisionProc, res.FirstDecisionRound, res.FirstDecisionTime)
	fmt.Fprintf(stdout, "last decision round: %d   total ops: %d   simulated time: %.4f\n",
		res.LastDecisionRound, res.TotalOps, res.Time)
	if res.BackupUsed > 0 {
		fmt.Fprintf(stdout, "backup protocol used by %d processes\n", res.BackupUsed)
	}
	halted := 0
	for _, h := range res.Halted {
		if h {
			halted++
		}
	}
	if halted > 0 {
		fmt.Fprintf(stdout, "halted processes: %d\n", halted)
	}
	if err := run.CheckRun(); err != nil {
		return fmt.Errorf("INVARIANT VIOLATION: %w", err)
	}
	fmt.Fprintln(stdout, "invariants: agreement, validity, Lemma 2, Lemma 4 all hold")
	return nil
}
