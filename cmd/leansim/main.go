// Command leansim runs a single simulated lean-consensus execution and
// reports (optionally traces) it. It is the debugging companion to
// leanbench: one run, fully deterministic given -seed, with every knob of
// the noisy scheduling model exposed.
//
// Usage:
//
//	leansim -n 8 -dist exponential -seed 42 [-trace] [-failures 0.01]
//	        [-adversary none|constant|stagger|anti-leader|half-split]
//	        [-bounded RMAX] [-m BOUND]
package main

import (
	"flag"
	"fmt"
	"os"

	"leanconsensus/internal/dist"
	"leanconsensus/internal/harness"
	"leanconsensus/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leansim:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 8, "number of processes")
	distName := flag.String("dist", "exponential", "noise distribution (see dist.ByName)")
	seed := flag.Uint64("seed", 1, "random seed")
	failures := flag.Float64("failures", 0, "per-operation halting probability h(n)")
	advName := flag.String("adversary", "none", "delay adversary: none, constant, stagger, anti-leader, half-split")
	m := flag.Float64("m", 1, "adversary delay bound M")
	bounded := flag.Int("bounded", 0, "run the bounded-space protocol with this rmax (0: unbounded)")
	trace := flag.Bool("trace", false, "print the full operation trace")
	optimized := flag.Bool("optimized", false, "run the elided-operations ablation variant")
	flag.Parse()

	d, err := dist.ByName(*distName)
	if err != nil {
		return err
	}
	var adv sched.Adversary
	switch *advName {
	case "none":
		adv = nil
	case "constant":
		adv = sched.Constant{D: *m}
	case "stagger":
		adv = sched.Stagger{Gap: *m}
	case "anti-leader":
		adv = sched.AntiLeader{M: *m}
	case "half-split":
		adv = sched.HalfSplit{M: *m}
	default:
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	variant := harness.VariantLean
	switch {
	case *bounded > 0:
		variant = harness.VariantCombined
	case *optimized:
		variant = harness.VariantLeanOptimized
	}

	run, err := harness.RunSim(harness.SimConfig{
		N:           *n,
		ReadNoise:   d,
		Adversary:   adv,
		FailureProb: *failures,
		Seed:        *seed,
		Variant:     variant,
		RMax:        *bounded,
		Record:      true,
	})
	if err != nil {
		return err
	}
	res := run.Res

	if *trace {
		for _, ev := range run.History.Events {
			b, r, isLean := run.Layout.DecodeA(ev.Reg)
			loc := fmt.Sprintf("reg[%d]", ev.Reg)
			if isLean {
				loc = fmt.Sprintf("a%d[%d]", b, r)
			}
			fmt.Printf("%12.6f  P%-3d %-5s %-8s = %d\n", ev.Time, ev.Proc, ev.Kind, loc, ev.Val)
		}
	}

	fmt.Printf("n=%d dist=%s seed=%d\n", *n, d, *seed)
	if v, ok := res.Agreement(); ok && v >= 0 {
		fmt.Printf("decision: %d\n", v)
	} else if res.AllHalted {
		fmt.Printf("decision: none (all processes halted; last round %d)\n", res.MaxRound)
	}
	fmt.Printf("first decision: proc %d at round %d (t=%.4f)\n",
		res.FirstDecisionProc, res.FirstDecisionRound, res.FirstDecisionTime)
	fmt.Printf("last decision round: %d   total ops: %d   simulated time: %.4f\n",
		res.LastDecisionRound, res.TotalOps, res.Time)
	if res.BackupUsed > 0 {
		fmt.Printf("backup protocol used by %d processes\n", res.BackupUsed)
	}
	halted := 0
	for _, h := range res.Halted {
		if h {
			halted++
		}
	}
	if halted > 0 {
		fmt.Printf("halted processes: %d\n", halted)
	}
	if err := run.CheckRun(); err != nil {
		return fmt.Errorf("INVARIANT VIOLATION: %w", err)
	}
	fmt.Println("invariants: agreement, validity, Lemma 2, Lemma 4 all hold")
	return nil
}
