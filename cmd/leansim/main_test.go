package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"decision:", "first decision:", "invariants:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-n", "6", "-seed", "11", "-trace"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different traces")
	}
}

func TestRunBounded(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-bounded", "8", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decision:") {
		t.Errorf("bounded run did not decide:\n%s", out.String())
	}
}

// TestRunModels drives every registered execution model through the
// shared -model flag.
func TestRunModels(t *testing.T) {
	for _, model := range []string{"hybrid", "msgnet"} {
		var out bytes.Buffer
		if err := run([]string{"-n", "4", "-model", model, "-seed", "2"}, &out); err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		if !strings.Contains(out.String(), "model="+model) || !strings.Contains(out.String(), "decision:") {
			t.Errorf("model %s output:\n%s", model, out.String())
		}
	}
	if err := run([]string{"-model", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown model accepted")
	}
	// msgnet genuinely uses the noise distribution, so -dist must work.
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-model", "msgnet", "-dist", "uniform"}, &out); err != nil {
		t.Errorf("msgnet -dist uniform: %v", err)
	}
	// hybrid has no clock: its header must not claim a distribution.
	out.Reset()
	if err := run([]string{"-n", "4", "-model", "hybrid"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "dist=") {
		t.Errorf("hybrid header claims a distribution it never uses:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sched") || !strings.Contains(out.String(), "exponential") {
		t.Errorf("-list output:\n%s", out.String())
	}
}

func TestRunRejectsUnknownAdversary(t *testing.T) {
	for _, args := range [][]string{
		{"-adversary", "bogus"},
		{"-adversary", "antileader:m="},             // malformed parameter
		{"-adversary", "antileader:x=1"},            // unknown parameter
		{"-adversary", "antileader:m=2", "-m", "3"}, // -m vs inline params
		{"-m", "5"},              // -m with the parameterless zero schedule
		{"-adversary", "sticky"}, // hybrid-only schedule on sched
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunRegistryAdversaries drives parameterized and aliased adversary
// specs through both the sched instrumentation path and an adversarial
// non-default model.
func TestRunRegistryAdversaries(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-adversary", "anti-leader:m=8", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adversary=antileader:m=8") ||
		!strings.Contains(out.String(), "invariants:") {
		t.Errorf("sched adversarial output:\n%s", out.String())
	}

	// -m binds the primary parameter, exactly as it always did.
	out.Reset()
	if err := run([]string{"-n", "4", "-adversary", "stagger", "-m", "2.5", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adversary=stagger:gap=2.5") {
		t.Errorf("-m did not bind stagger's gap:\n%s", out.String())
	}

	// hybrid accepts schedules with a quantum/priority face.
	out.Reset()
	if err := run([]string{"-n", "4", "-model", "hybrid", "-adversary", "antileader", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adversary=antileader:m=1") ||
		!strings.Contains(out.String(), "decision:") {
		t.Errorf("hybrid adversarial output:\n%s", out.String())
	}

	// msgnet is outside the adversary axis: typed rejection.
	if err := run([]string{"-n", "4", "-model", "msgnet", "-adversary", "antileader"}, &bytes.Buffer{}); err == nil {
		t.Error("msgnet accepted an adversary")
	} else if !strings.Contains(err.Error(), "adversary") {
		t.Errorf("msgnet rejection %q does not mention the adversary", err)
	}
}

// TestRunTraceTimelineOtherModels: -trace is no longer sched-only — the
// other models render the engine's flight-recorder timeline, ending in
// the decision events.
func TestRunTraceTimelineOtherModels(t *testing.T) {
	for _, model := range []string{"hybrid", "msgnet"} {
		var out bytes.Buffer
		args := []string{"-n", "4", "-seed", "3", "-model", model, "-trace"}
		if err := run(args, &out); err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		text := out.String()
		for _, want := range []string{"trace leansim model=" + model, "start", "op#1", "DECIDE", "decision:"} {
			if !strings.Contains(text, want) {
				t.Errorf("model %s: -trace output missing %q:\n%.600s", model, want, text)
			}
		}
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "-2", "-model", "hybrid"},
		{"-n", "0"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: non-positive -n accepted", args)
		}
	}
}

// TestRunRejectsSchedFlagsWithOtherModel: sched-only knobs must error,
// not silently vanish, when combined with a non-default model.
func TestRunRejectsSchedFlagsWithOtherModel(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-model", "hybrid", "-failures", "0.05"}, "sched"},
		{[]string{"-model", "hybrid", "-adversary", "constant"}, "sched"},
		// hybrid has no clock, so -dist can never affect it (but -dist is
		// meaningful for msgnet, so the message must not blame "sched only").
		{[]string{"-model", "hybrid", "-dist", "uniform"}, "noise"},
	} {
		err := run(tc.args, &bytes.Buffer{})
		if err == nil {
			t.Errorf("args %v: inapplicable flag silently accepted", tc.args)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestRunModelNameIsCaseInsensitive: the registry canonicalizes names,
// so "-model Sched" must take the full sched path (trace, invariants),
// not the generic model path.
func TestRunModelNameIsCaseInsensitive(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-model", "Sched", "-trace", "-seed", "3"}, &out); err != nil {
		t.Fatalf("-model Sched -trace: %v", err)
	}
	if !strings.Contains(out.String(), "invariants:") {
		t.Errorf("-model Sched skipped the sched instrumentation:\n%s", out.String())
	}
}

// TestRunHelpIsNotAnError: -h prints usage and exits successfully.
func TestRunHelpIsNotAnError(t *testing.T) {
	if err := run([]string{"-h"}, &bytes.Buffer{}); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
}
