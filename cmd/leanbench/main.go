// Command leanbench regenerates the evaluation of the paper: Figure 1 and
// the table for every quantitative theorem (see DESIGN.md's experiment
// index E1-E14).
//
// Usage:
//
//	leanbench [-scale bench|default|full] [-out DIR] [-markdown FILE] [experiment ...]
//
// With no experiment arguments every experiment runs in order. Experiments
// are named by ID (E1, E2, ...) or by mnemonic (fig1, tail, race,
// lower-bound, hybrid, bounded, failures, unfairness, crash, validity,
// ablation).
//
// -out writes each table as CSV into DIR; -markdown appends every report
// as a markdown fragment to FILE (used to build EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"leanconsensus/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leanbench:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleFlag := flag.String("scale", "default", "experiment scale: bench, default or full")
	outDir := flag.String("out", "", "directory for CSV output (empty: no CSV)")
	mdFile := flag.String("markdown", "", "file to append markdown reports to (empty: no markdown)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %-12s %s\n", e.ID, e.Name, e.Brief)
		}
		return nil
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	var todo []harness.Experiment
	if args := flag.Args(); len(args) > 0 {
		for _, a := range args {
			e, err := harness.Lookup(a)
			if err != nil {
				return err
			}
			todo = append(todo, e)
		}
	} else {
		todo = harness.Experiments()
	}

	var md strings.Builder
	for _, e := range todo {
		start := time.Now()
		rep, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		fmt.Print(rep.Text())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := rep.WriteCSV(*outDir); err != nil {
				return err
			}
		}
		if *mdFile != "" {
			md.WriteString(rep.Markdown())
		}
	}
	if *mdFile != "" {
		f, err := os.OpenFile(*mdFile, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(md.String()); err != nil {
			return err
		}
	}
	return nil
}
