// Command leanbench regenerates the evaluation of the paper: Figure 1 and
// the table for every quantitative theorem (see DESIGN.md's experiment
// index E1-E14).
//
// Usage:
//
//	leanbench [-scale bench|default|full] [-out DIR] [-markdown FILE] [experiment ...]
//
// With no experiment arguments every experiment runs in order. Experiments
// are named by ID (E1, E2, ...) or by mnemonic (fig1, tail, race,
// lower-bound, hybrid, bounded, failures, unfairness, crash, validity,
// ablation). -list prints the experiment index.
//
// -out writes each table as CSV into DIR; -markdown appends every report
// as a markdown fragment to FILE (used to build EXPERIMENTS.md).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"leanconsensus/internal/cli"
	"leanconsensus/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leanbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leanbench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "default", "experiment scale: bench, default or full")
	outDir := fs.String("out", "", "directory for CSV output (empty: no CSV)")
	mdFile := fs.String("markdown", "", "file to append markdown reports to (empty: no markdown)")
	list := fs.Bool("list", false, "list the experiment index, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leanbench")
		return nil
	}

	if *list {
		// leanbench selects experiments, not models or distributions — those
		// are fixed per experiment — so only the experiment index is listed
		// here (the registries are shown by the tools whose flags take them).
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "  %-4s %-12s %s\n", e.ID, e.Name, e.Brief)
		}
		return nil
	}

	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	var todo []harness.Experiment
	if args := fs.Args(); len(args) > 0 {
		for _, a := range args {
			e, err := harness.Lookup(a)
			if err != nil {
				return err
			}
			todo = append(todo, e)
		}
	} else {
		todo = harness.Experiments()
	}

	var md strings.Builder
	for _, e := range todo {
		start := time.Now()
		rep, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		fmt.Fprint(stdout, rep.Text())
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := rep.WriteCSV(*outDir); err != nil {
				return err
			}
		}
		if *mdFile != "" {
			md.WriteString(rep.Markdown())
		}
	}
	if *mdFile != "" {
		f, err := os.OpenFile(*mdFile, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(md.String()); err != nil {
			return err
		}
	}
	return nil
}
