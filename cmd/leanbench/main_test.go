package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"E1", "fig1", "E14", "contention", // the experiment index
	} {
		if !strings.Contains(text, want) {
			t.Errorf("-list output missing %q:\n%s", want, text)
		}
	}
	// leanbench has no -model/-dist flag, so -list must not advertise the
	// registries as if it did.
	if strings.Contains(text, "execution models") {
		t.Errorf("-list advertises models leanbench cannot select:\n%s", text)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E2b (the bare renewal race) is the cheapest experiment end to end.
	var out bytes.Buffer
	if err := run([]string{"-scale", "bench", "race"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E2b completed") {
		t.Errorf("experiment did not complete:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown scale accepted")
	}
}
