package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"leanconsensus/internal/cli"
)

// sweep runs the CLI and returns stdout.
func sweep(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("leansweep %v: %v", args, err)
	}
	return out.String()
}

func TestList(t *testing.T) {
	out := sweep(t, "-list")
	for _, want := range []string{"execution models:", "sched", "noise distributions:", "exponential"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestHelpAndUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if err := run(context.Background(), []string{"-bogus"}, &out); !errors.Is(err, cli.ErrUsage) {
		t.Fatalf("bad flag: err = %v, want ErrUsage", err)
	}
	for _, args := range [][]string{
		{},                                // no spec, no reps
		{"-reps", "2", "-format", "yaml"}, // bad format
		{"-resume"},                       // -resume without -checkpoint
		{"-spec", "fig1", "-reps", "3"},   // spec + grid flags
		{"-reps", "2", "-ns", "4,x"},      // unparseable list
		{"-reps", "2", "-models", "nope"}, // unknown model
		{"-spec", "/nonexistent/spec.json"},
	} {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestInlineGridCSV checks the inline-flag path end to end and the CSV
// shape.
func TestInlineGridCSV(t *testing.T) {
	out := sweep(t, "-dists", "exponential,uniform", "-ns", "4,8", "-seeds", "1,2",
		"-reps", "5", "-shards", "2", "-q")
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines, want header + 8 cells:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "model,dist,adversary,n,seed,reps,") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "sched,exponential,zero,4,1,5,") {
		t.Fatalf("unexpected first cell %q", lines[1])
	}
}

// TestSpecFileMatchesInline runs the same grid via a spec file and
// inline flags: identical bytes.
func TestSpecFileMatchesInline(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(
		`{"dists":["exponential"],"ns":[4,8],"seeds":[1],"reps":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile := sweep(t, "-spec", spec, "-q")
	fromFlags := sweep(t, "-dists", "exponential", "-ns", "4,8", "-seeds", "1", "-reps", "10", "-q")
	if fromFile != fromFlags {
		t.Fatalf("spec-file and inline runs differ:\n%s\nvs\n%s", fromFile, fromFlags)
	}
}

// TestBuiltinFig1Table smoke-runs the shipped fig1 spec in table format.
func TestBuiltinFig1Table(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 campaign is ~1s")
	}
	out := sweep(t, "-spec", "fig1", "-format", "table", "-q")
	if !strings.Contains(out, "mean round of first termination") {
		t.Fatalf("fig1 table missing header:\n%s", out)
	}
	if !strings.Contains(out, "exponential(mean=1)") {
		t.Fatalf("fig1 table missing distribution label:\n%s", out)
	}
}

// TestAdversarialGridGoldenAcrossShapesAndResume is the cross-layer
// golden check for the adversary axis: an adversary-bearing campaign —
// two schedules, two pool shapes — emits byte-identical CSV whether run
// straight through, on a different pool, or interrupted after its first
// checkpointed cell and resumed with -resume.
func TestAdversarialGridGoldenAcrossShapesAndResume(t *testing.T) {
	grid := []string{"-models", "sched", "-dists", "exponential",
		"-adversaries", "antileader:m=2,stagger:gap=1.5",
		"-ns", "4,8", "-seeds", "1", "-reps", "25", "-q"}

	shapes := [][]string{
		{"-shards", "1", "-workers", "1"},
		{"-shards", "4", "-workers", "2"},
	}
	golden := sweep(t, append(append([]string{}, shapes[0]...), grid...)...)
	if got := sweep(t, append(append([]string{}, shapes[1]...), grid...)...); got != golden {
		t.Fatalf("adversarial grid differs across pool shapes:\n%s\nvs\n%s", golden, got)
	}
	for _, label := range []string{",antileader:m=2,", ",stagger:gap=1.5,"} {
		if !strings.Contains(golden, label) {
			t.Fatalf("adversarial CSV missing label %q:\n%s", label, golden)
		}
	}

	// Interrupt each shape's checkpointed run once the manifest appears,
	// then resume on that shape: same bytes as the golden run.
	for i, shape := range shapes {
		ckpt := filepath.Join(t.TempDir(), "adv.ckpt.json")
		ctx, cancel := context.WithCancel(context.Background())
		watch := make(chan struct{})
		go func() {
			defer close(watch)
			for {
				if _, err := os.Stat(ckpt); err == nil {
					cancel()
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}()
		args := append(append([]string{"-checkpoint", ckpt}, shape...), grid...)
		var out bytes.Buffer
		err := run(ctx, args, &out)
		cancel()
		<-watch
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("shape %d interrupted run: %v", i, err)
		}
		resumed := sweep(t, append([]string{"-resume"}, args...)...)
		if resumed != golden {
			t.Fatalf("shape %d adversarial resume differs from golden:\n%s\nvs\n%s", i, resumed, golden)
		}
	}
}

// TestExecModesGoldenByteIdentical is the batched-execution acceptance
// golden: an adversarial grid emits byte-identical reports in all three
// formats whether run streamed or batched, on either pool shape, and
// whether interrupted mid-run and resumed under the *other* execution
// mode — the checkpoint manifest is mode-agnostic.
func TestExecModesGoldenByteIdentical(t *testing.T) {
	grid := []string{"-models", "sched", "-dists", "exponential",
		"-adversaries", "antileader:m=2,stagger:gap=1.5",
		"-ns", "4,8", "-seeds", "1", "-reps", "25", "-q"}
	shapes := [][]string{
		{"-shards", "1", "-workers", "1"},
		{"-shards", "4", "-workers", "2"},
	}

	for _, format := range []string{"csv", "json", "table"} {
		base := append([]string{"-format", format}, grid...)
		golden := sweep(t, append(append([]string{"-exec", "streamed"}, shapes[0]...), base...)...)
		for _, shape := range shapes {
			for _, mode := range []string{"auto", "batched"} {
				args := append(append([]string{"-exec", mode}, shape...), base...)
				if got := sweep(t, args...); got != golden {
					t.Fatalf("%s/%s/%v differs from streamed golden:\n%s\nvs\n%s",
						format, mode, shape, got, golden)
				}
			}
		}
	}

	// Interrupt under one mode, resume under the other: the manifest
	// carries no trace of the execution mode, so crossing it must still
	// reproduce the golden bytes (CSV, the default format, suffices here —
	// the formats render from one aggregate).
	golden := sweep(t, append(append([]string{"-exec", "streamed"}, shapes[0]...), grid...)...)
	crossings := [][2]string{{"streamed", "batched"}, {"batched", "streamed"}}
	for _, cross := range crossings {
		ckpt := filepath.Join(t.TempDir(), "exec.ckpt.json")
		ctx, cancel := context.WithCancel(context.Background())
		watch := make(chan struct{})
		go func() {
			defer close(watch)
			for {
				if _, err := os.Stat(ckpt); err == nil {
					cancel()
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}()
		args := append(append([]string{"-exec", cross[0], "-checkpoint", ckpt}, shapes[1]...), grid...)
		var out bytes.Buffer
		err := run(ctx, args, &out)
		cancel()
		<-watch
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("%s interrupted run: %v", cross[0], err)
		}
		resumeArgs := append(append([]string{"-exec", cross[1], "-resume", "-checkpoint", ckpt},
			shapes[0]...), grid...)
		if resumed := sweep(t, resumeArgs...); resumed != golden {
			t.Fatalf("resume %s-after-%s differs from golden:\n%s\nvs\n%s",
				cross[1], cross[0], resumed, golden)
		}
	}
}

// TestExecFlagValidation covers the -exec error paths.
func TestExecFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-reps", "2", "-exec", "bogus"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-exec") {
		t.Fatalf("-exec bogus: err = %v, want rejection", err)
	}
	err := run(context.Background(), []string{"-reps", "2", "-exec", "batched",
		"-trace", "2", "-format", "json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "streamed") {
		t.Fatalf("-exec batched with -trace: err = %v, want rejection", err)
	}
	// -trace under auto silently streams: it must still work.
	outStr := sweep(t, "-dists", "exponential", "-ns", "4", "-seeds", "1", "-reps", "3",
		"-trace", "1", "-format", "json", "-q")
	if !strings.Contains(outStr, `"trace"`) {
		t.Fatalf("-trace under auto produced no trace block:\n%s", outStr)
	}
}

// TestInterruptResumeByteIdentical is the CLI-level acceptance check:
// cancel a checkpointed sweep partway (the SIGINT path is this ctx
// cancellation), rerun with -resume, and require the final CSV to equal
// an uninterrupted run's bytes.
func TestInterruptResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dists", "exponential,uniform", "-ns", "4,8", "-seeds", "1,2",
		"-reps", "30", "-shards", "2", "-q"}

	full := sweep(t, args...)

	// Interrupted run: cancel the context once the first cell has been
	// checkpointed (watch the manifest appear, then cancel).
	ckpt := filepath.Join(dir, "sweep.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	watch := make(chan struct{})
	go func() {
		defer close(watch)
		for {
			if _, err := os.Stat(ckpt); err == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
	var out bytes.Buffer
	err := run(ctx, append([]string{"-checkpoint", ckpt}, args...), &out)
	cancel()
	<-watch
	if err == nil {
		// The sweep may legitimately finish before the watcher cancels;
		// resume must then be a pure report re-emit. Either way the bytes
		// must match below.
		t.Log("sweep finished before the interrupt landed")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}

	resumed := sweep(t, append([]string{"-checkpoint", ckpt, "-resume"}, args...)...)
	if resumed != full {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", resumed, full)
	}

	// A third run without -resume must refuse the existing checkpoint.
	if err := run(context.Background(), append([]string{"-checkpoint", ckpt}, args...), &out); err == nil {
		t.Fatal("existing checkpoint clobbered without -resume")
	}
}
