// Command leansweep runs declarative experiment campaigns: cartesian
// grids over execution models, noise distributions, process counts, and
// seeds, executed through the sharded arena with streaming per-cell
// aggregation, checkpoint/resume, and deterministic reports.
//
// Usage:
//
//	leansweep -spec fig1 [-format csv|json|table]
//	leansweep -spec sweep.json [-checkpoint sweep.ckpt] [-resume]
//	leansweep -dists exponential,uniform -ns 4,8 -seeds 1,2 -reps 100
//	          [-models sched] [-adversaries zero,antileader:m=8]
//	          [-name mysweep] [-shards 8] [-workers 2]
//	          [-exec auto|streamed|batched] [-trace K] [-version]
//	leansweep -list
//
// -exec picks the cell execution mode. The default (auto) runs each cell
// batched — one tight loop over a pooled worker session, the fast path —
// unless -trace demands per-instance streaming. Both modes emit
// byte-identical reports and checkpoints; -exec streamed exists for
// comparison and for per-instance observation.
//
// -trace K (JSON format only) arms the flight recorder: the K most
// interesting instances per arena shard — violations first, then the
// deepest rounds — are attached, with their full event timelines, to
// the report's "trace" block. Captures rank on simulated quantities
// only, so traced reports replay byte-identically; CSV, table, and
// checkpoint bytes are never affected.
//
// A campaign is specified either by a JSON file (-spec path; the
// POST /v1/campaigns wire format), by the built-in name "fig1" (the
// shipped port of the paper's Figure 1 at bench scale), or inline by the
// grid flags. The deterministic report goes to stdout — byte-identical
// for a given spec across runs, pool shapes, and interrupt/resume
// boundaries — while progress and wall-clock throughput go to stderr.
//
// With -checkpoint the campaign atomically snapshots every completed
// cell; an interrupted sweep rerun with -resume skips finished cells and
// still emits the exact bytes of an uninterrupted run. Without -resume
// an existing checkpoint is refused rather than clobbered.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"leanconsensus/internal/arena"
	"leanconsensus/internal/campaign"
	"leanconsensus/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leansweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leansweep", flag.ContinueOnError)
	specSrc := fs.String("spec", "", `campaign spec: a JSON file path or the built-in "fig1"`)
	name := fs.String("name", "", "campaign name for reports and manifests (inline grids)")
	models := fs.String("models", "", "comma-separated execution models (see -list; default sched)")
	dists := fs.String("dists", "", "comma-separated noise distributions (see -list; default exponential)")
	adversaries := fs.String("adversaries", "", "comma-separated adversarial schedules, e.g. zero,antileader:m=8 (see -list; default zero)")
	ns := fs.String("ns", "", "comma-separated process counts (default 8)")
	seeds := fs.String("seeds", "", "comma-separated cell seeds (default 1)")
	reps := fs.Int("reps", 0, "repetitions per grid cell (required for inline grids)")
	shards := fs.Int("shards", arena.DefaultShards, "arena shards")
	workers := fs.Int("workers", arena.DefaultWorkers, "arena workers per shard")
	checkpoint := fs.String("checkpoint", "", "manifest path: atomically snapshot each completed cell")
	resume := fs.Bool("resume", false, "resume an existing checkpoint (requires -checkpoint)")
	format := fs.String("format", "csv", "report format: csv, json, or table (Figure-1-shaped)")
	execMode := fs.String("exec", "auto", "cell execution: auto, streamed, or batched (auto batches unless -trace streams)")
	traceK := fs.Int("trace", 0, "capture the K most interesting instances per shard into the JSON report (0: off; forces streamed execution)")
	quiet := fs.Bool("q", false, "suppress per-cell progress on stderr")
	list := fs.Bool("list", false, "list execution models and distributions, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leansweep")
		return nil
	}
	if *list {
		cli.List(stdout)
		return nil
	}
	switch *format {
	case "csv", "json", "table":
	default:
		return fmt.Errorf("-format must be csv, json, or table, got %q", *format)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *traceK < 0 {
		return fmt.Errorf("-trace must be non-negative, got %d", *traceK)
	}
	if *traceK > 0 && *format != "json" {
		return fmt.Errorf("-trace captures render only in the JSON report: use -format json")
	}
	var exec campaign.Execution
	switch *execMode {
	case "auto":
		exec = campaign.ExecAuto
	case "streamed":
		exec = campaign.ExecStreamed
	case "batched":
		exec = campaign.ExecBatched
	default:
		return fmt.Errorf("-exec must be auto, streamed, or batched, got %q", *execMode)
	}
	if exec == campaign.ExecBatched && *traceK > 0 {
		return fmt.Errorf("-trace needs the streamed path: use -exec auto or streamed")
	}

	camp, err := resolveSpec(*specSrc, campaign.Spec{
		Name:        *name,
		Models:      splitList(*models),
		Dists:       splitList(*dists),
		Adversaries: splitList(*adversaries),
		Ns:          nil,
		Seeds:       nil,
		Reps:        *reps,
	}, *ns, *seeds, fs)
	if err != nil {
		return err
	}

	cfg := campaign.Config{
		Shards:     *shards,
		Workers:    *workers,
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Execution:  exec,
	}
	if *traceK > 0 {
		cfg.Trace = &arena.TraceConfig{PerShard: *traceK}
	}
	if !*quiet {
		// Pace accounting rides on the campaign's own cell-latency feed:
		// cells run sequentially through one arena, so the mean observed
		// cell latency times the remaining cells is the ETA, and the
		// latency sum (not wall time, which includes resume skips and
		// checkpoint writes) is the cells/sec denominator.
		var latencySum time.Duration
		var timed int
		cfg.OnCell = func(p campaign.Progress) {
			if p.CellKey == "" {
				fmt.Fprintf(os.Stderr, "leansweep: resumed %d/%d cells from checkpoint\n",
					p.CellsDone, p.CellsTotal)
				return
			}
			latencySum += p.CellLatency
			timed++
			pace := ""
			if latencySum > 0 {
				rate := float64(timed) / latencySum.Seconds()
				eta := time.Duration(float64(p.CellsTotal-p.CellsDone) / rate * float64(time.Second))
				pace = fmt.Sprintf("; %.1f cells/s, eta %v", rate, eta.Round(100*time.Millisecond))
			}
			fmt.Fprintf(os.Stderr, "leansweep: cell %d/%d done (%s; instances %d/%d%s)\n",
				p.CellsDone, p.CellsTotal, p.CellKey, p.InstancesDone, p.InstancesTotal, pace)
		}
	}

	start := time.Now()
	rep, err := camp.Run(ctx, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	switch *format {
	case "json":
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(b); err != nil {
			return err
		}
	case "table":
		if _, err := io.WriteString(stdout, rep.Fig1Table().Text()); err != nil {
			return err
		}
	default:
		if _, err := io.WriteString(stdout, rep.CSV()); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "leansweep: %d cells, %d instances in %v\n",
		len(camp.Cells), camp.Instances, elapsed.Round(time.Millisecond))
	return nil
}

// resolveSpec builds the campaign from -spec (file or built-in) or from
// the inline grid flags; mixing the two is an error, since a file spec
// silently overridden by a stray flag would be a silently wrong sweep.
func resolveSpec(src string, inline campaign.Spec, ns, seeds string, fs *flag.FlagSet) (*campaign.Campaign, error) {
	gridFlags := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "name", "models", "dists", "adversaries", "ns", "seeds", "reps":
			gridFlags = true
		}
	})
	if src != "" {
		if gridFlags {
			return nil, fmt.Errorf("-spec and inline grid flags are mutually exclusive")
		}
		if src == "fig1" {
			return campaign.Fig1Spec().Resolve()
		}
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return campaign.DecodeSpec(f)
	}
	if inline.Reps == 0 {
		return nil, fmt.Errorf("-reps is required (or use -spec)")
	}
	var err error
	if inline.Ns, err = parseInts(ns); err != nil {
		return nil, fmt.Errorf("-ns: %v", err)
	}
	if inline.Seeds, err = parseUints(seeds); err != nil {
		return nil, fmt.Errorf("-seeds: %v", err)
	}
	return inline.Resolve()
}

// splitList splits a comma-separated flag value; empty means nil
// (default).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseInts parses a comma-separated int list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseUints parses a comma-separated uint64 list.
func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
