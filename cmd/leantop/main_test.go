package main

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"leanconsensus"
	"leanconsensus/internal/cli"
	"leanconsensus/internal/server"
)

// startService boots a real in-process leanserve and returns its base
// URL and typed client.
func startService(t *testing.T) (string, *leanconsensus.Client) {
	t.Helper()
	srv, err := server.New(server.Config{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL, leanconsensus.NewClient(ts.URL)
}

// TestRunOnce drives the non-TTY mode end to end: run a real job, then
// render one frame and check it carries all three panels — health
// vitals, the job's axis with its decision count, and the journal tail
// with the job's correlation ID.
func TestRunOnce(t *testing.T) {
	url, client := startService(t)
	ctx := context.Background()

	id, err := client.SubmitJobs(ctx, leanconsensus.JobSpec{
		Model: "sched", Dist: "exponential", Adversary: "zero", Instances: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, id); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(ctx, []string{"-url", url, "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "\x1b[") {
		t.Errorf("-once emitted terminal escapes:\n%s", got)
	}
	for _, want := range []string{
		"leantop — " + url,
		"queue depth",
		"goroutines",
		"sched/exponential/zero",
		"job.admit",
		"job.done",
		id,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	// One frame has no previous counter sample: the rate column is "-".
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "sched/exponential/zero") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Errorf("first frame shows a rate: %q", line)
		}
	}
	if !strings.Contains(got, "200") {
		t.Errorf("frame missing the 200 decisions:\n%s", got)
	}
}

// TestRunLive lets the polling loop render at least two frames and
// stops it by context; the second frame must show a numeric rate.
func TestRunLive(t *testing.T) {
	url, client := startService(t)
	ctx := context.Background()

	id, err := client.SubmitJobs(ctx, leanconsensus.JobSpec{Model: "sched", Instances: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, id); err != nil {
		t.Fatal(err)
	}

	runCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	var out bytes.Buffer
	if err := run(runCtx, []string{"-url", url, "-once=false", "-interval", "50ms"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "leantop — "); n < 2 {
		t.Fatalf("live mode rendered %d frames, want >= 2:\n%s", n, got)
	}
	if !strings.Contains(got, "\x1b[H\x1b[2J") {
		t.Error("live mode never cleared the screen")
	}
	// An idle service between frames: the axis rate on later frames is a
	// number (0.0), not the no-sample dash.
	frames := strings.Split(got, "leantop — ")
	last := frames[len(frames)-1]
	if !strings.Contains(last, "0.0") {
		t.Errorf("later frame missing a numeric rate:\n%s", last)
	}
}

func TestDecisionTotals(t *testing.T) {
	text := strings.Join([]string{
		`# HELP leanconsensus_decisions_total decided instances`,
		`leanconsensus_decisions_total{model="sched",dist="exponential",adversary="zero",value="0"} 40`,
		`leanconsensus_decisions_total{model="sched",dist="exponential",adversary="zero",value="1"} 60`,
		`leanconsensus_decisions_total{model="msched",dist="uniform",adversary="antileader:m=2",value="0"} 7`,
		`leanconsensus_campaign_instances_total{model="sched",dist="uniform",adversary="zero"} 50`,
		`leanconsensus_campaign_instances_total 1000`,
		`leanconsensus_other_total{model="sched"} 999`,
		`garbage`,
	}, "\n")
	got := decisionTotals(text)
	want := map[string]float64{
		"sched/exponential/zero":        100,
		"sched/uniform/zero":            50,
		"msched/uniform/antileader:m=2": 7,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("decisionTotals = %v, want %v", got, want)
	}
}

func TestTenantBacklog(t *testing.T) {
	text := strings.Join([]string{
		`# HELP leanconsensus_tenant_queued_instances instances admitted under this tenant`,
		`leanconsensus_tenant_queued_instances{tenant="acme"} 900`,
		`leanconsensus_tenant_queued_instances{tenant="globex"} 500`,
		`leanconsensus_queued_instances 1400`,
		`garbage`,
	}, "\n")
	got := tenantBacklog(text)
	want := map[string]float64{"acme": 900, "globex": 500}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tenantBacklog = %v, want %v", got, want)
	}
	if got := tenantBacklog("leanconsensus_queued_instances 7\n"); len(got) != 0 {
		t.Errorf("untenanted exposition produced a backlog: %v", got)
	}
}

func TestParseLabels(t *testing.T) {
	got := parseLabels(`model="sched",dist="exponential",adversary="antileader:m=2"`)
	want := map[string]string{"model": "sched", "dist": "exponential", "adversary": "antileader:m=2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseLabels = %v, want %v", got, want)
	}
}

func TestFormatEvent(t *testing.T) {
	line := formatEvent(leanconsensus.Event{
		Seq: 3, TS: time.Date(2026, 1, 2, 3, 4, 5, 0, time.Local).UnixNano(),
		Kind: "campaign.cell.done", ID: "model=sched,...", Parent: "c-000001",
		Labels: leanconsensus.EventLabels{Model: "sched", Dist: "uniform", Adversary: "zero", N: 4, Tenant: "acme", Count: 25},
	})
	for _, want := range []string{"campaign.cell.done", "⤶ c-000001", "sched/uniform/zero n=4", "tenant=acme", "count=25"} {
		if !strings.Contains(line, want) {
			t.Errorf("formatEvent missing %q: %s", want, line)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "leantop ") {
		t.Errorf("-version output %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out); !errors.Is(err, cli.ErrUsage) {
		t.Errorf("bad flag returned %v, want ErrUsage", err)
	}
}

func TestRunBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-events", "-1"}, &out); err == nil {
		t.Error("negative -events accepted")
	}
	if err := run(context.Background(), []string{"-interval", "0s"}, &out); err == nil {
		t.Error("zero -interval accepted")
	}
}

// TestRunUnreachable: a dead endpoint is an error, not a hang.
func TestRunUnreachable(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-url", "http://127.0.0.1:1", "-once"}, &out); err == nil {
		t.Error("unreachable service accepted")
	}
}
