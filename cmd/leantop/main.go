// Command leantop is a live operations view over a running leanserve
// service: a top-like terminal screen assembled purely from the
// service's public observability surface — /healthz vitals, the
// /v1/events operations journal, and the per-axis decision counters on
// /metrics. It needs no access to the server process; anything leantop
// shows, any dashboard can show.
//
// Usage:
//
//	leantop [-url http://127.0.0.1:8080] [-interval 1s]
//	        [-events 12] [-once] [-version]
//	leantop -query [-since N] [-kind K] [-id ID] [-parent ID]
//	        [-after RFC3339] [-before RFC3339] [-limit N] [-json]
//
// -query is the scripting mode: evaluate one journal query against
// GET /v1/events — the on-disk history too, when the service runs with
// -journal-dir — print the matching events oldest first, and exit.
// Filters compose (kind AND id AND parent AND time window); -json emits
// the whole page as one JSON object for jq, and the plain mode ends
// with a "# next <seq> first <seq>" line so a script can page with
// -since.
//
// Each frame shows the service vitals (queue depth, goroutines, GC
// pause p99), per-axis throughput — decisions per second for every
// model × dist × adversary combination the service has executed,
// computed by differencing leanconsensus_decisions_total between polls
// — a per-tenant backlog section (from
// leanconsensus_tenant_queued_instances, shown only when the service
// has named tenants), and the tail of the operations journal with
// correlation IDs and tenant labels.
//
// -once renders a single frame without touching the terminal (no
// cursor addressing, no clearing) and exits; it is the non-TTY mode
// used by scripts and the CI smoke test. The first frame of a live
// session has no previous counter sample, so rates appear as "-" until
// the second poll.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"leanconsensus"
	"leanconsensus/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leantop:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leantop", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "leanserve base URL")
	interval := fs.Duration("interval", time.Second, "poll interval between frames")
	tail := fs.Int("events", 12, "journal-tail lines per frame")
	once := fs.Bool("once", false, "render one frame without clearing the screen, then exit (non-TTY mode)")
	query := fs.Bool("query", false, "evaluate one journal query, print the matches, and exit (scripting mode)")
	qSince := fs.Uint64("since", 0, "with -query: replay from this sequence position (0 = all retained history)")
	qKind := fs.String("kind", "", "with -query: only events of this kind (e.g. job.done)")
	qID := fs.String("id", "", "with -query: only events about this correlation ID")
	qParent := fs.String("parent", "", "with -query: only events chained to this parent ID")
	qAfter := fs.String("after", "", "with -query: only events at or after this RFC3339 time")
	qBefore := fs.String("before", "", "with -query: only events before this RFC3339 time")
	qLimit := fs.Int("limit", 0, "with -query: page size (0 = server default)")
	qJSON := fs.Bool("json", false, "with -query: emit the page as one JSON object")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leantop")
		return nil
	}
	if *query {
		q := leanconsensus.EventQuery{
			Since:  *qSince,
			Kind:   *qKind,
			ID:     *qID,
			Parent: *qParent,
			Limit:  *qLimit,
		}
		for _, bound := range []struct {
			name, raw string
			dst       *time.Time
		}{{"-after", *qAfter, &q.After}, {"-before", *qBefore, &q.Before}} {
			if bound.raw == "" {
				continue
			}
			t, err := time.Parse(time.RFC3339Nano, bound.raw)
			if err != nil {
				return fmt.Errorf("%s: want RFC3339, e.g. 2026-08-08T12:00:00Z: %v", bound.name, err)
			}
			*bound.dst = t
		}
		return runQuery(ctx, leanconsensus.NewClient(*url), q, *qJSON, stdout)
	}
	if *tail < 0 {
		return fmt.Errorf("-events must be non-negative, got %d", *tail)
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", *interval)
	}

	v := &view{client: leanconsensus.NewClient(*url), tail: *tail}
	if *once {
		return v.frame(ctx, stdout, false)
	}
	for {
		if err := v.frame(ctx, stdout, true); err != nil {
			// ^C mid-poll surfaces as a cancelled HTTP request; that is
			// the normal way a live session ends, not a failure.
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// runQuery evaluates one event query and prints the page: JSON as a
// single object for pipelines, plain as one formatted line per event
// plus a trailing paging hint.
func runQuery(ctx context.Context, client *leanconsensus.Client, q leanconsensus.EventQuery, asJSON bool, w io.Writer) error {
	page, err := client.QueryEvents(ctx, q)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(page)
	}
	for _, e := range page.Events {
		fmt.Fprintf(w, "%6d  %s\n", e.Seq, formatEvent(e))
	}
	_, err = fmt.Fprintf(w, "# %d events  next %d  first %d\n", len(page.Events), page.Next, page.First)
	return err
}

// view accumulates the state a frame-to-frame diff needs: the journal
// replay position, the retained event tail, and the previous counter
// sample with its timestamp (rates are deltas over wall time).
type view struct {
	client *leanconsensus.Client
	tail   int

	pos    uint64 // next /v1/events?since= position
	gap    bool   // the ring wrapped past us since the last frame
	events []leanconsensus.Event

	prev     map[string]float64 // axis key -> decisions_total at last sample
	prevAt   time.Time
	firstSeq uint64 // seq of the oldest retained event, for gap detection
}

// frame polls the service once and renders one screen. clear selects
// live-terminal behaviour (home the cursor and erase below); -once
// passes false so output is plain lines.
func (v *view) frame(ctx context.Context, w io.Writer, clear bool) error {
	h, err := v.client.Health(ctx)
	if err != nil {
		return err
	}
	page, err := v.client.Events(ctx, v.pos)
	if err != nil {
		return err
	}
	if len(page.Events) > 0 && v.pos != 0 && page.Events[0].Seq != v.pos+1 {
		v.gap = true // ring wrapped: events between pos and Events[0] are gone
	}
	v.events = append(v.events, page.Events...)
	if over := len(v.events) - v.tail; over > 0 {
		v.events = append(v.events[:0], v.events[over:]...)
	}
	v.pos = page.Next

	text, err := v.client.Metrics(ctx)
	if err != nil {
		return err
	}
	now := time.Now()
	cur := decisionTotals(text)
	rates := map[string]float64{}
	if v.prev != nil {
		dt := now.Sub(v.prevAt).Seconds()
		if dt > 0 {
			for k, val := range cur {
				rates[k] = (val - v.prev[k]) / dt
			}
		}
	}

	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "leantop — %s  [%s %s @ %s]", v.client.BaseURL, h.Status, h.Version, h.Revision)
	if h.Node != "" {
		fmt.Fprintf(&b, "  node %s", h.Node)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "queue depth %d   queued instances %d   jobs %d   campaigns %d   goroutines %d   gc pause p99 %.3fms",
		h.QueueDepth, h.QueuedInstances, h.Jobs, h.Campaigns, h.Goroutines, h.GCPauseP99Ms)
	if h.Tenants > 0 {
		fmt.Fprintf(&b, "   tenants %d", h.Tenants)
	}
	if h.JournalDropped > 0 {
		fmt.Fprintf(&b, "   journal drops %d", h.JournalDropped)
	}
	b.WriteString("\n\n")

	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "%-52s %14s %12s\n", "AXIS (model × dist × adversary)", "DECISIONS", "RATE/S")
	if len(keys) == 0 {
		b.WriteString("  (no decisions yet)\n")
	}
	for _, k := range keys {
		rate := "-"
		if v.prev != nil {
			rate = fmt.Sprintf("%.1f", rates[k])
		}
		fmt.Fprintf(&b, "%-52s %14.0f %12s\n", k, cur[k], rate)
	}

	if tenants := tenantBacklog(text); len(tenants) > 0 {
		tkeys := make([]string, 0, len(tenants))
		for k := range tenants {
			tkeys = append(tkeys, k)
		}
		sort.Strings(tkeys)
		b.WriteString("\nTENANT BACKLOG (queued instances)\n")
		for _, k := range tkeys {
			fmt.Fprintf(&b, "%-52s %14.0f\n", k, tenants[k])
		}
	}

	fmt.Fprintf(&b, "\nJOURNAL (last %d of seq ≤ %d", len(v.events), v.pos)
	if v.gap {
		b.WriteString(", ring wrapped — some events missed")
	}
	b.WriteString(")\n")
	for _, e := range v.events {
		fmt.Fprintf(&b, "  %s\n", formatEvent(e))
	}
	v.prev, v.prevAt = cur, now
	_, err = io.WriteString(w, b.String())
	return err
}

// formatEvent renders one journal entry as a single line: timestamp,
// kind, correlation chain, and whichever labels the event carries.
func formatEvent(e leanconsensus.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-22s", time.Unix(0, e.TS).Format("15:04:05.000"), e.Kind)
	if e.ID != "" {
		b.WriteString(" " + e.ID)
	}
	if e.Parent != "" {
		b.WriteString(" ⤶ " + e.Parent)
	}
	l := e.Labels
	if l.Model != "" || l.Dist != "" || l.Adversary != "" {
		fmt.Fprintf(&b, "  [%s/%s/%s n=%d]", l.Model, l.Dist, l.Adversary, l.N)
	}
	if l.Tenant != "" {
		fmt.Fprintf(&b, "  tenant=%s", l.Tenant)
	}
	if l.Count != 0 {
		fmt.Fprintf(&b, "  count=%d", l.Count)
	}
	if l.Detail != "" {
		fmt.Fprintf(&b, "  %s", l.Detail)
	}
	return b.String()
}

// decisionTotals extracts per-axis decided-instance totals from the
// Prometheus text exposition, keyed "model/dist/adversary": the two
// value series of leanconsensus_decisions_total (the job path) plus
// the axis-labeled leanconsensus_campaign_instances_total series (the
// campaign path — every repetition decides). Unlabeled aggregate
// series are skipped so the axis table never grows a "//" row.
func decisionTotals(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		var rest string
		var ok bool
		if rest, ok = strings.CutPrefix(line, "leanconsensus_decisions_total{"); !ok {
			if rest, ok = strings.CutPrefix(line, "leanconsensus_campaign_instances_total{"); !ok {
				continue
			}
		}
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest[end+2:]), 64)
		if err != nil {
			continue
		}
		labels := parseLabels(rest[:end])
		if labels["model"] == "" {
			continue
		}
		key := labels["model"] + "/" + labels["dist"] + "/" + labels["adversary"]
		out[key] += val
	}
	return out
}

// tenantBacklog extracts per-tenant queued-instance gauges from the
// Prometheus text exposition, keyed by tenant name. The service only
// registers the gauge for named tenants, so an untenanted deployment
// yields an empty map and the section stays hidden.
func tenantBacklog(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, "leanconsensus_tenant_queued_instances{")
		if !ok {
			continue
		}
		end := strings.Index(rest, "} ")
		if end < 0 {
			continue
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest[end+2:]), 64)
		if err != nil {
			continue
		}
		labels := parseLabels(rest[:end])
		if labels["tenant"] == "" {
			continue
		}
		out[labels["tenant"]] = val
	}
	return out
}

// parseLabels parses a Prometheus label body `k="v",k="v"`. Values in
// this codebase are %q-quoted registry names, so strconv.Unquote
// handles every escape the exposition can produce.
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			break
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			break
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end >= len(s) {
			break
		}
		if val, err := strconv.Unquote(s[:end+1]); err == nil {
			out[key] = val
		}
		s = strings.TrimPrefix(s[end+1:], ",")
	}
	return out
}
