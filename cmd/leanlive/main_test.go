package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-runs", "3", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"live consensus, n=3 goroutines, 3 runs", "max round:", "ops/proc:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWithInjectedNoise(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "2", "-runs", "2", "-noise", "exponential", "-unit", "1us"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live consensus") {
		t.Errorf("output:\n%s", out.String())
	}
	if err := run([]string{"-noise", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown noise distribution accepted")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	// leanlive has no -model flag, so -list must show distributions only:
	// advertising execution models here would suggest a flag that fails.
	if !strings.Contains(out.String(), "exponential") || strings.Contains(out.String(), "execution models") {
		t.Errorf("-list output:\n%s", out.String())
	}
}
