// Command leanlive runs lean-consensus on real goroutines with
// sync/atomic shared registers — the "real system" counterpart of the
// simulator, where the Go runtime and the operating system supply the
// scheduling noise.
//
// Usage:
//
//	leanlive -n 8 [-runs 100] [-noise exponential] [-unit 1us] [-yield] [-list]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"leanconsensus"
	"leanconsensus/internal/cli"
	"leanconsensus/internal/stats"
	"leanconsensus/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leanlive:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leanlive", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of goroutines")
	runs := fs.Int("runs", 50, "number of consensus runs")
	noiseName := fs.String("noise", "", "injected sleep-noise distribution (empty: none, pure runtime noise)")
	unit := fs.Duration("unit", time.Microsecond, "sleep-noise unit")
	yield := fs.Bool("yield", false, "call runtime.Gosched between operations")
	seed := fs.Uint64("seed", 1, "seed for injected noise and input assignment")
	timeout := fs.Duration("timeout", time.Minute, "per-run timeout")
	list := fs.Bool("list", false, "list noise distributions, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leanlive")
		return nil
	}

	if *list {
		// leanlive runs real goroutines, not a pluggable execution model, so
		// only the distribution registry applies here.
		cli.ListDistributions(stdout)
		return nil
	}
	var noise leanconsensus.Distribution
	if *noiseName != "" {
		d, err := cli.Distribution(*noiseName)
		if err != nil {
			return err
		}
		noise = d
	}

	var rounds, ops stats.Acc
	var elapsed stats.Acc
	backups := 0
	rng := xrand.New(*seed, 0x6c6c)
	for r := 0; r < *runs; r++ {
		inputs := make([]int, *n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		res, err := leanconsensus.Live(ctx, leanconsensus.LiveConfig{
			Inputs:     inputs,
			SleepNoise: noise,
			SleepUnit:  *unit,
			Seed:       xrand.Mix(*seed, uint64(r)),
			Yield:      *yield,
		})
		cancel()
		if err != nil {
			return fmt.Errorf("run %d: %w", r, err)
		}
		rounds.Add(float64(res.Rounds))
		var total int64
		for _, c := range res.OpsPerProcess {
			total += c
		}
		ops.Add(float64(total) / float64(*n))
		elapsed.Add(float64(res.Elapsed.Microseconds()))
		backups += res.BackupUsed
	}
	fmt.Fprintf(stdout, "live consensus, n=%d goroutines, %d runs\n", *n, *runs)
	fmt.Fprintf(stdout, "  max round:   %s\n", rounds.String())
	fmt.Fprintf(stdout, "  ops/proc:    %s\n", ops.String())
	fmt.Fprintf(stdout, "  elapsed µs:  %s\n", elapsed.String())
	fmt.Fprintf(stdout, "  backup used: %d times across all runs\n", backups)
	return nil
}
