// Command leanlive runs lean-consensus on real goroutines with
// sync/atomic shared registers — the "real system" counterpart of the
// simulator, where the Go runtime and the operating system supply the
// scheduling noise.
//
// Usage:
//
//	leanlive -n 8 [-runs 100] [-noise exponential] [-unit 1us] [-yield]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"leanconsensus"
	"leanconsensus/internal/dist"
	"leanconsensus/internal/stats"
	"leanconsensus/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leanlive:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 8, "number of goroutines")
	runs := flag.Int("runs", 50, "number of consensus runs")
	noiseName := flag.String("noise", "", "injected sleep-noise distribution (empty: none, pure runtime noise)")
	unit := flag.Duration("unit", time.Microsecond, "sleep-noise unit")
	yield := flag.Bool("yield", false, "call runtime.Gosched between operations")
	seed := flag.Uint64("seed", 1, "seed for injected noise and input assignment")
	timeout := flag.Duration("timeout", time.Minute, "per-run timeout")
	flag.Parse()

	var noise leanconsensus.Distribution
	if *noiseName != "" {
		d, err := dist.ByName(*noiseName)
		if err != nil {
			return err
		}
		noise = d
	}

	var rounds, ops stats.Acc
	var elapsed stats.Acc
	backups := 0
	rng := xrand.New(*seed, 0x6c6c)
	for r := 0; r < *runs; r++ {
		inputs := make([]int, *n)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		res, err := leanconsensus.Live(ctx, leanconsensus.LiveConfig{
			Inputs:     inputs,
			SleepNoise: noise,
			SleepUnit:  *unit,
			Seed:       xrand.Mix(*seed, uint64(r)),
			Yield:      *yield,
		})
		cancel()
		if err != nil {
			return fmt.Errorf("run %d: %w", r, err)
		}
		rounds.Add(float64(res.Rounds))
		var total int64
		for _, c := range res.OpsPerProcess {
			total += c
		}
		ops.Add(float64(total) / float64(*n))
		elapsed.Add(float64(res.Elapsed.Microseconds()))
		backups += res.BackupUsed
	}
	fmt.Printf("live consensus, n=%d goroutines, %d runs\n", *n, *runs)
	fmt.Printf("  max round:   %s\n", rounds.String())
	fmt.Printf("  ops/proc:    %s\n", ops.String())
	fmt.Printf("  elapsed µs:  %s\n", elapsed.String())
	fmt.Printf("  backup used: %d times across all runs\n", backups)
	return nil
}
