// Command leanarena is a load generator for the consensus arena: it
// submits many independent lean-consensus instances to a sharded
// worker-pool service and reports aggregate throughput, latency, and
// decision statistics.
//
// Usage:
//
//	leanarena -instances 10000 -shards 8 [-workers 2] [-n 8]
//	          [-dist exponential] [-backend sched|hybrid|msgnet]
//	          [-adversary NAME[:param=value...]] [-seed 1]
//	          [-trace K] [-json] [-list] [-version]
//
// -trace K arms the flight recorder: the K most interesting instances
// per shard (violations first, then the deepest rounds) are captured
// with their full event timelines and attached to the JSON report's
// "trace" block. Capture selection ranks only simulated quantities, so
// traced reports stay byte-identical across runs.
//
// The -backend flag resolves through the engine's model registry, so any
// newly registered execution model is immediately available; -list prints
// the registry. With -json the deterministic report is written to stdout
// (two runs with the same -seed are byte-identical) and the wall-clock
// throughput line goes to stderr; without it everything is printed as
// text.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"leanconsensus/internal/arena"
	"leanconsensus/internal/cli"
	"leanconsensus/internal/engine"
	"leanconsensus/internal/stats"
	"leanconsensus/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leanarena:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leanarena", flag.ContinueOnError)
	instances := fs.Int("instances", 10000, "number of consensus instances to run")
	shards := fs.Int("shards", arena.DefaultShards, "number of shards")
	workers := fs.Int("workers", arena.DefaultWorkers, "workers per shard")
	n := fs.Int("n", arena.DefaultN, "processes per consensus instance")
	distName := fs.String("dist", "exponential", "noise distribution (see -list)")
	backendName := fs.String("backend", "sched", "execution model (see -list)")
	advName := fs.String("adversary", "", "adversarial schedule, e.g. antileader:m=8 (see -list)")
	seed := fs.Uint64("seed", 1, "arena seed (fixes decisions and simulated metrics)")
	traceK := fs.Int("trace", 0, "capture the K most interesting instances per shard into the JSON report (0: off)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSON report on stdout")
	list := fs.Bool("list", false, "list execution models and distributions, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leanarena")
		return nil
	}

	if *list {
		cli.List(stdout)
		return nil
	}
	if *instances <= 0 {
		return fmt.Errorf("-instances must be positive, got %d", *instances)
	}
	d, err := cli.Distribution(*distName)
	if err != nil {
		return err
	}
	model, err := cli.Model(*backendName)
	if err != nil {
		return err
	}
	// arena.New validates the model/adversary pairing with the engine's
	// typed error, so no pre-check is needed here.
	adv, err := cli.Adversary(*advName)
	if err != nil {
		return err
	}
	if engine.IgnoresNoise(model) {
		// An explicitly chosen distribution that can't affect the outcome is
		// an error, not a silently wrong run (default noise still appears in
		// reports as configuration).
		distSet := false
		fs.Visit(func(f *flag.Flag) { distSet = distSet || f.Name == "dist" })
		if distSet {
			return fmt.Errorf("-dist has no effect on -backend %s: the model declares noise cannot affect it",
				model.Name())
		}
	}

	if *traceK < 0 {
		return fmt.Errorf("-trace must be non-negative, got %d", *traceK)
	}
	if *traceK > 0 && !*jsonOut {
		return fmt.Errorf("-trace captures render only in the JSON report: add -json")
	}
	var tc *arena.TraceConfig
	if *traceK > 0 {
		tc = &arena.TraceConfig{PerShard: *traceK}
	}

	a, err := arena.New(arena.Config{
		Shards:    *shards,
		Workers:   *workers,
		N:         *n,
		Noise:     d,
		Model:     model,
		Adversary: adv,
		Seed:      *seed,
		Trace:     tc,
	})
	if err != nil {
		return err
	}

	// The proposed bits come from the seed's own deterministic stream, so
	// the workload — not just the service — replays under a fixed seed.
	bits := xrand.New(*seed, 0x6c6f6164) // "load"
	results := make([]arena.Result, *instances)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *instances; i++ {
		key := fmt.Sprintf("key-%08d", i)
		done, err := a.Submit(key, bits.Intn(2))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, done <-chan arena.Result) {
			defer wg.Done()
			results[i] = <-done
		}(i, done)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := a.Close(); err != nil {
		return err
	}

	st := a.Stats()
	decided := st.Totals.Decided[0] + st.Totals.Decided[1]
	throughput := float64(decided) / elapsed.Seconds()

	if *jsonOut {
		rep := arena.BuildReport(a.Config(), results)
		rep.Trace = a.Traces()
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(b); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "throughput: %.0f decisions/sec (%d instances in %v)\n",
			throughput, decided, elapsed.Round(time.Millisecond))
		return nil
	}

	var lat stats.Acc
	for _, r := range results {
		lat.Add(r.Latency.Seconds() * 1e6)
	}
	if adv.IsZero() {
		fmt.Fprintf(stdout, "leanarena: backend=%s dist=%s seed=%d\n", model.Name(), d, *seed)
	} else {
		fmt.Fprintf(stdout, "leanarena: backend=%s dist=%s adversary=%s seed=%d\n",
			model.Name(), d, adv.Name(), *seed)
	}
	fmt.Fprintf(stdout, "  instances:   %d across %d shards × %d workers (n=%d per instance)\n",
		*instances, a.Config().Shards, a.Config().Workers, a.Config().N)
	fmt.Fprintf(stdout, "  decided:     %d zeros, %d ones, %d errors\n",
		st.Totals.Decided[0], st.Totals.Decided[1], st.Totals.Errors)
	fmt.Fprintf(stdout, "  rounds:      mean first %.2f, max last %d\n",
		st.MeanFirstRound(), st.Totals.MaxRound)
	fmt.Fprintf(stdout, "  ops:         %d total\n", st.Totals.Ops)
	fmt.Fprintf(stdout, "  latency µs:  %s\n", lat.String())
	fmt.Fprintf(stdout, "  elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  throughput:  %.0f decisions/sec\n", throughput)

	// Shard balance: consistent hashing should spread keys evenly.
	sorted := perShard(results, a.Config().Shards)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Fprintf(stdout, "  shard load:  min %d / max %d per shard\n", sorted[0], sorted[len(sorted)-1])
	return nil
}

// perShard counts instances routed to each shard.
func perShard(results []arena.Result, shards int) []int64 {
	counts := make([]int64, shards)
	for _, r := range results {
		if r.Shard >= 0 && r.Shard < shards {
			counts[r.Shard]++
		}
	}
	return counts
}
