// Command leanarena is a load generator for the consensus arena: it
// submits many independent lean-consensus instances to a sharded
// worker-pool service and reports aggregate throughput, latency, and
// decision statistics.
//
// Usage:
//
//	leanarena -instances 10000 -shards 8 [-workers 2] [-n 8]
//	          [-dist exponential] [-backend sched|hybrid|msgnet]
//	          [-seed 1] [-json]
//
// With -json the deterministic report is written to stdout (two runs with
// the same -seed are byte-identical) and the wall-clock throughput line
// goes to stderr; without it everything is printed as text.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"leanconsensus/internal/arena"
	"leanconsensus/internal/dist"
	"leanconsensus/internal/stats"
	"leanconsensus/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leanarena:", err)
		os.Exit(1)
	}
}

func run() error {
	instances := flag.Int("instances", 10000, "number of consensus instances to run")
	shards := flag.Int("shards", arena.DefaultShards, "number of shards")
	workers := flag.Int("workers", arena.DefaultWorkers, "workers per shard")
	n := flag.Int("n", arena.DefaultN, "processes per consensus instance")
	distName := flag.String("dist", "exponential", "noise distribution (see dist.ByName)")
	backendName := flag.String("backend", "sched", "execution model: sched, hybrid, msgnet")
	seed := flag.Uint64("seed", 1, "arena seed (fixes decisions and simulated metrics)")
	jsonOut := flag.Bool("json", false, "emit the deterministic JSON report on stdout")
	flag.Parse()

	if *instances <= 0 {
		return fmt.Errorf("-instances must be positive, got %d", *instances)
	}
	d, err := dist.ByName(*distName)
	if err != nil {
		return err
	}
	backend, err := arena.ByName(*backendName)
	if err != nil {
		return err
	}

	a, err := arena.New(arena.Config{
		Shards:  *shards,
		Workers: *workers,
		N:       *n,
		Noise:   d,
		Backend: backend,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}

	// The proposed bits come from the seed's own deterministic stream, so
	// the workload — not just the service — replays under a fixed seed.
	bits := xrand.New(*seed, 0x6c6f6164) // "load"
	results := make([]arena.Result, *instances)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *instances; i++ {
		key := fmt.Sprintf("key-%08d", i)
		done, err := a.Submit(key, bits.Intn(2))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, done <-chan arena.Result) {
			defer wg.Done()
			results[i] = <-done
		}(i, done)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := a.Close(); err != nil {
		return err
	}

	st := a.Stats()
	decided := st.Totals.Decided[0] + st.Totals.Decided[1]
	throughput := float64(decided) / elapsed.Seconds()

	if *jsonOut {
		rep := arena.BuildReport(a.Config(), results)
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Fprintf(os.Stderr, "throughput: %.0f decisions/sec (%d instances in %v)\n",
			throughput, decided, elapsed.Round(time.Millisecond))
		return nil
	}

	var lat stats.Acc
	for _, r := range results {
		lat.Add(r.Latency.Seconds() * 1e6)
	}
	fmt.Printf("leanarena: backend=%s dist=%s seed=%d\n", backend.Name(), d, *seed)
	fmt.Printf("  instances:   %d across %d shards × %d workers (n=%d per instance)\n",
		*instances, a.Config().Shards, a.Config().Workers, a.Config().N)
	fmt.Printf("  decided:     %d zeros, %d ones, %d errors\n",
		st.Totals.Decided[0], st.Totals.Decided[1], st.Totals.Errors)
	fmt.Printf("  rounds:      mean first %.2f, max last %d\n",
		st.MeanFirstRound(), st.Totals.MaxRound)
	fmt.Printf("  ops:         %d total\n", st.Totals.Ops)
	fmt.Printf("  latency µs:  %s\n", lat.String())
	fmt.Printf("  elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput:  %.0f decisions/sec\n", throughput)

	// Shard balance: consistent hashing should spread keys evenly.
	sorted := perShard(results, a.Config().Shards)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Printf("  shard load:  min %d / max %d per shard\n", sorted[0], sorted[len(sorted)-1])
	return nil
}

// perShard counts instances routed to each shard.
func perShard(results []arena.Result, shards int) []int64 {
	counts := make([]int64, shards)
	for _, r := range results {
		if r.Shard >= 0 && r.Shard < shards {
			counts[r.Shard]++
		}
	}
	return counts
}
