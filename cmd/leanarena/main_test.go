package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTextReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-instances", "60", "-shards", "2", "-workers", "2", "-n", "4", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"leanarena: backend=sched", "decided:", "throughput:", "shard load:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunJSONReplay is the end-to-end determinism check: two full runs
// with the same seed must emit byte-identical JSON reports.
func TestRunJSONReplay(t *testing.T) {
	args := []string{"-instances", "120", "-shards", "3", "-workers", "2", "-n", "4", "-seed", "17", "-json"}
	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("same seed produced different JSON reports:\n%s\nvs\n%s", first.String(), second.String())
	}
	if !strings.Contains(first.String(), `"checksum"`) {
		t.Errorf("JSON report missing checksum:\n%s", first.String())
	}
}

// TestRunAdversaryFlag drives the -adversary flag end to end: the JSON
// report carries the canonical label, replays byte-identically, and
// differs from the zero-schedule run's decisions; pairings the backend
// cannot run are rejected up front.
func TestRunAdversaryFlag(t *testing.T) {
	base := []string{"-instances", "120", "-shards", "3", "-workers", "2", "-n", "4", "-seed", "17", "-json"}
	var zero, first, second bytes.Buffer
	if err := run(base, &zero); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-adversary", "anti-leader:m=2"}, base...)
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("adversarial run is not replayable:\n%s\nvs\n%s", first.String(), second.String())
	}
	if !strings.Contains(first.String(), `"adversary": "antileader:m=2"`) {
		t.Errorf("JSON report missing canonical adversary label:\n%s", first.String())
	}
	if bytes.Equal(zero.Bytes(), first.Bytes()) {
		t.Error("antileader:m=2 report equals the zero-schedule report; the schedule never armed")
	}

	// The hybrid backend runs the schedule's quantum/priority face.
	var out bytes.Buffer
	if err := run([]string{"-instances", "20", "-shards", "2", "-n", "4",
		"-backend", "hybrid", "-adversary", "antileader"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adversary=antileader:m=1") {
		t.Errorf("hybrid adversarial header:\n%s", out.String())
	}

	// msgnet is outside the axis; halfsplit has no hybrid face.
	for _, args := range [][]string{
		{"-backend", "msgnet", "-adversary", "antileader"},
		{"-backend", "hybrid", "-adversary", "halfsplit"},
		{"-adversary", "bogus"},
		{"-adversary", "antileader:m="},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunBackendFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-instances", "20", "-shards", "2", "-n", "4", "-backend", "hybrid"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "backend=hybrid") {
		t.Errorf("output does not name the hybrid backend:\n%s", out.String())
	}
	if err := run([]string{"-backend", "bogus"}, &out); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sched", "hybrid", "msgnet", "exponential"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadInstances(t *testing.T) {
	if err := run([]string{"-instances", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("zero instances accepted")
	}
}

// TestRunRejectsDistForNoiseFreeBackend: hybrid declares noise can't
// affect it, so an explicit -dist must error instead of silently doing
// nothing (the default distribution is still fine — it's configuration,
// not a claim of effect).
func TestRunRejectsDistForNoiseFreeBackend(t *testing.T) {
	if err := run([]string{"-backend", "hybrid", "-dist", "uniform", "-instances", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("explicit -dist with a noise-free backend accepted")
	}
	var out bytes.Buffer
	if err := run([]string{"-backend", "hybrid", "-instances", "10"}, &out); err != nil {
		t.Errorf("default dist with hybrid backend: %v", err)
	}
}
