package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"leanconsensus"
	"leanconsensus/internal/cli"
)

// addrWriter buffers run's output and signals once the first line — the
// "listening on" announcement — is complete.
type addrWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	done  bool
}

func newAddrWriter() *addrWriter { return &addrWriter{first: make(chan struct{})} }

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if !w.done && strings.Contains(w.buf.String(), "\n") {
		w.done = true
		close(w.first)
	}
	return n, err
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startServer boots run on an ephemeral port and returns the base URL,
// the shutdown trigger, and the exit-wait.
func startServer(t *testing.T, args ...string) (baseURL string, shutdown func(), wait func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := newAddrWriter()
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	select {
	case <-out.first:
	case err := <-errCh:
		cancel()
		t.Fatalf("server exited before announcing its address: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatalf("server never announced its address:\n%s", out.String())
	}
	line := strings.SplitN(out.String(), "\n", 2)[0]
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no URL in announcement %q", line)
	}
	t.Cleanup(cancel)
	return strings.TrimSpace(line[i:]), cancel, func() error {
		select {
		case err := <-errCh:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("run did not exit after shutdown")
		}
	}
}

// TestServeSubmitDrain boots the daemon, serves a real batch through the
// typed client, checks the telemetry agrees with the results, and then
// shuts down gracefully.
func TestServeSubmitDrain(t *testing.T) {
	baseURL, shutdown, wait := startServer(t, "-shards", "2", "-workers", "2")
	client := leanconsensus.NewClient(baseURL)
	ctx := context.Background()

	id, err := client.SubmitJobs(ctx,
		leanconsensus.JobSpec{Model: "sched", Instances: 300, Seed: 4},
		leanconsensus.JobSpec{Model: "hybrid", Instances: 200, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var decided int64
	for _, ss := range st.Specs {
		decided += ss.Result.Decided0 + ss.Result.Decided1
	}
	if decided != 500 {
		t.Fatalf("decided %d of 500 instances", decided)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `leanconsensus_decisions_total{model="sched"`) {
		t.Errorf("metrics missing sched decision counters:\n%.400s", text)
	}

	shutdown()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"execution models:", "sched", "noise distributions:", "exponential"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out); !errors.Is(err, cli.ErrUsage) {
		t.Errorf("bad flag returned %v, want ErrUsage", err)
	}
}

func TestRunHelp(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
}

func TestRunBadAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
}
