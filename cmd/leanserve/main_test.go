package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"leanconsensus"
	"leanconsensus/internal/cli"
)

// addrWriter buffers run's output and signals once the first line — the
// "listening on" announcement — is complete.
type addrWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	done  bool
}

func newAddrWriter() *addrWriter { return &addrWriter{first: make(chan struct{})} }

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if !w.done && strings.Contains(w.buf.String(), "\n") {
		w.done = true
		close(w.first)
	}
	return n, err
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startServer boots run on an ephemeral port and returns the base URL,
// the live output buffer, the shutdown trigger, and the exit-wait.
func startServer(t *testing.T, args ...string) (baseURL string, out *addrWriter, shutdown func(), wait func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = newAddrWriter()
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	select {
	case <-out.first:
	case err := <-errCh:
		cancel()
		t.Fatalf("server exited before announcing its address: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatalf("server never announced its address:\n%s", out.String())
	}
	line := strings.SplitN(out.String(), "\n", 2)[0]
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no URL in announcement %q", line)
	}
	t.Cleanup(cancel)
	return strings.TrimSpace(line[i:]), out, cancel, func() error {
		select {
		case err := <-errCh:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("run did not exit after shutdown")
		}
	}
}

// TestServeSubmitDrain boots the daemon, serves a real batch through the
// typed client, checks the telemetry agrees with the results, and then
// shuts down gracefully.
func TestServeSubmitDrain(t *testing.T) {
	baseURL, _, shutdown, wait := startServer(t, "-shards", "2", "-workers", "2")
	client := leanconsensus.NewClient(baseURL)
	ctx := context.Background()

	id, err := client.SubmitJobs(ctx,
		leanconsensus.JobSpec{Model: "sched", Instances: 300, Seed: 4},
		leanconsensus.JobSpec{Model: "hybrid", Instances: 200, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var decided int64
	for _, ss := range st.Specs {
		decided += ss.Result.Decided0 + ss.Result.Decided1
	}
	if decided != 500 {
		t.Fatalf("decided %d of 500 instances", decided)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `leanconsensus_decisions_total{model="sched"`) {
		t.Errorf("metrics missing sched decision counters:\n%.400s", text)
	}

	shutdown()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
}

// TestDebugAddrServesPprof boots the daemon with the profiling listener
// armed and fetches a goroutine dump from it; the service port must not
// serve the pprof routes.
func TestDebugAddrServesPprof(t *testing.T) {
	baseURL, out, shutdown, wait := startServer(t, "-shards", "1", "-workers", "1", "-debug-addr", "127.0.0.1:0")

	// The debug announcement is the second output line; poll briefly for
	// it (startServer only waits for the first).
	var debugURL string
	deadline := time.Now().Add(5 * time.Second)
	for debugURL == "" {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "leanserve: debug (pprof) listening on "); ok {
				debugURL = strings.TrimSpace(rest)
			}
		}
		if debugURL == "" {
			if time.Now().After(deadline) {
				t.Fatal("debug listener never announced")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(strings.TrimSuffix(debugURL, "/") + "/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof goroutine dump: status %d, body %.200s", resp.StatusCode, body)
	}

	// Profiling stays off the service port.
	resp, err = http.Get(baseURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("service port serves /debug/pprof/ with status %d", resp.StatusCode)
	}

	shutdown()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
}

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "leanserve ") || !strings.Contains(out.String(), "go1") {
		t.Errorf("-version output %q", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"execution models:", "sched", "noise distributions:", "exponential"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out); !errors.Is(err, cli.ErrUsage) {
		t.Errorf("bad flag returned %v, want ErrUsage", err)
	}
}

func TestRunHelp(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
}

func TestRunBadAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
}
