// Command leanserve is the network-facing consensus service: an
// HTTP/JSON daemon serving batched lean-consensus jobs over the sharded
// arena, with admission control and Prometheus telemetry.
//
// Usage:
//
//	leanserve [-addr 127.0.0.1:8080] [-shards 8] [-workers 2]
//	          [-highwater 262144] [-maxbatch 64]
//	          [-maxjobs N]  (default GOMAXPROCS/2)
//	          [-state-dir DIR] [-tenant-share 0.5] [-max-tenants 64]
//	          [-journal-dir DIR] [-debug-addr ADDR] [-list] [-version]
//
// -state-dir makes the service state durable: every admitted job and
// campaign is persisted as an atomic record under DIR, ID sequences
// continue across restarts, finished work stays servable at
// GET /v1/jobs/{id} / GET /v1/campaigns/{id} on the new process, and
// interrupted work re-runs at boot — campaigns resume from their
// checkpoint manifest, emitting a report byte-identical to an
// uninterrupted run. With -state-dir, SIGINT is a checkpoint-and-stop
// handoff instead of a full drain: running campaigns stop at the next
// cell boundary and the restarted process picks them up.
//
// -journal-dir makes the operations journal durable: a follower
// goroutine persists every event to length-prefixed, CRC-checked
// segments under DIR, and on startup the retained history replays into
// the in-memory ring — sequence numbers continue across restarts, so
// GET /v1/events?since= positions stay valid over a crash or deploy.
// Disk writes never touch the request path: a stalling disk costs
// history (visible as leanconsensus_journal_dropped_total), never
// admission latency.
//
// Admission is per-tenant fair: requests carrying an X-Lean-Tenant
// header are bucketed, each tenant is guaranteed -tenant-share of the
// high-water mark (unused share spills over to whoever needs it), and
// leanconsensus_tenant_queued_instances says who owns the backlog.
// The header is unauthenticated, so both sides of the gate are
// bounded: the global backlog never exceeds the high-water mark plus
// one guaranteed share regardless of how many tenant names arrive, and
// at most -max-tenants named buckets (and gauges) are ever created —
// names past the cap are accounted in the unnamed default bucket.
//
// -debug-addr serves net/http/pprof (CPU and heap profiles, goroutine
// dumps, execution traces) on a separate listener, so profiling stays
// off the service port and off by default; bind it to localhost, e.g.
// -debug-addr 127.0.0.1:6060, and point go tool pprof at
// http://127.0.0.1:6060/debug/pprof/profile. -version prints the build
// identity (module version, VCS revision, toolchain) and exits.
//
// Endpoints:
//
//	POST /v1/jobs            submit a batch of job specs (202 + job id)
//	GET  /v1/jobs/{id}       poll status and results
//	GET  /v1/jobs/{id}/stream  per-shard progress as server-sent events
//	GET  /v1/jobs/{id}/trace   flight-recorder captures of a traced job
//	POST /v1/campaigns       submit a declarative campaign grid (202 + id)
//	GET  /v1/campaigns/{id}  poll campaign status and the final report
//	GET  /v1/campaigns/{id}/stream  cell progress as server-sent events
//	GET  /v1/models          list registered models, variants, distributions
//	GET  /healthz            liveness (200 ok / 503 draining)
//	GET  /metrics            Prometheus text exposition
//
// Job specs resolve through the same registries as every other tool, so
// -list shows exactly what the service accepts. On SIGINT/SIGTERM the
// daemon stops admitting, drains in-flight jobs through the arena's
// graceful Close, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leanconsensus/internal/cli"
	"leanconsensus/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leanserve:", err)
		os.Exit(1)
	}
}

// shutdownTimeout bounds how long drain waits for open connections
// (long-lived SSE streams end when their jobs do; this is the backstop).
const shutdownTimeout = 30 * time.Second

// run starts the daemon and blocks until ctx is cancelled, then drains.
// It prints the bound address as its first output line, so callers (and
// tests) can use an ephemeral ":0" port.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("leanserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	shards := fs.Int("shards", 0, "arena shards per job (default 8)")
	workers := fs.Int("workers", 0, "arena workers per shard (default 2)")
	highwater := fs.Int64("highwater", 0, "queued-instance high-water mark for 429 shedding (default 262144)")
	maxbatch := fs.Int("maxbatch", 0, "maximum job specs per POST (default 64)")
	maxjobs := fs.Int("maxjobs", 0, "maximum concurrently executing jobs (default GOMAXPROCS/2)")
	stateDir := fs.String("state-dir", "", "persist admitted jobs/campaigns and resume them across restarts (off when empty)")
	tenantShare := fs.Float64("tenant-share", 0, "guaranteed per-tenant fraction of the high-water mark (default 0.5)")
	maxTenants := fs.Int("max-tenants", 0, "maximum named tenant buckets; further names share the default bucket (default 64)")
	journalDir := fs.String("journal-dir", "", "persist the operations journal to segments in this directory (off when empty)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this extra listener (off when empty)")
	list := fs.Bool("list", false, "list execution models and distributions, then exit")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leanserve")
		return nil
	}
	if *list {
		cli.List(stdout)
		return nil
	}

	srv, err := server.New(server.Config{
		Shards:            *shards,
		Workers:           *workers,
		HighWater:         *highwater,
		MaxBatch:          *maxbatch,
		MaxConcurrentJobs: *maxjobs,
		JournalDir:        *journalDir,
		StateDir:          *stateDir,
		TenantShare:       *tenantShare,
		MaxTenants:        *maxTenants,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "leanserve: listening on http://%s\n", ln.Addr())
	if *journalDir != "" {
		fmt.Fprintf(stdout, "leanserve: journal persisted to %s\n", *journalDir)
	}
	if *stateDir != "" {
		fmt.Fprintf(stdout, "leanserve: state persisted to %s\n", *stateDir)
	}

	// The debug listener is deliberately separate from the service port:
	// profiling endpoints never ride on the address operators expose, and
	// an explicit mux keeps them off http.DefaultServeMux side effects.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Handler: dmux}
		defer ds.Close()
		go ds.Serve(dln) //nolint:errcheck // closed on shutdown; profiling is best-effort
		fmt.Fprintf(stdout, "leanserve: debug (pprof) listening on http://%s/debug/pprof/\n", dln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "leanserve: draining")
	// Drain the job queue first: once every job has finished, the SSE
	// streams have sent their terminal events and the connections can go
	// idle, so the HTTP shutdown below completes promptly.
	if err := srv.Close(); err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
	fmt.Fprintln(stdout, "leanserve: drained")
	return nil
}
