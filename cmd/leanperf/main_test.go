package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesSnapshot runs the real probe suite at bench scale and
// checks the snapshot's shape.
func TestRunWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_1.json")
	profile := filepath.Join(dir, "default.pgo")
	var stderr bytes.Buffer
	if err := run([]string{"-scale", "bench", "-out", out, "-baseline", "none",
		"-cpuprofile", profile}, &bytes.Buffer{}, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	// The PGO capture must exist and be a non-trivial pprof blob.
	if fi, err := os.Stat(profile); err != nil || fi.Size() == 0 {
		t.Fatalf("-cpuprofile wrote nothing: %v", err)
	}
	bf, err := loadSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Schema != Schema || bf.Scale != "bench" || !strings.HasPrefix(bf.Go, "go") {
		t.Errorf("snapshot header: schema=%q scale=%q go=%q", bf.Schema, bf.Scale, bf.Go)
	}
	if len(bf.Benchmarks) != len(probes) {
		t.Fatalf("%d benchmarks, want %d", len(bf.Benchmarks), len(probes))
	}
	for i, b := range bf.Benchmarks {
		if b.Name != probes[i].name {
			t.Errorf("benchmark %d named %q, want %q", i, b.Name, probes[i].name)
		}
		if b.Ops <= 0 || b.Throughput <= 0 || b.NsPerOp <= 0 || b.AllocsPerOp < 0 {
			t.Errorf("%s: non-positive measurements: %+v", b.Name, b)
		}
		if b.P99 < b.P50 || b.P50 < 0 {
			t.Errorf("%s: percentiles out of order: p50=%g p99=%g", b.Name, b.P50, b.P99)
		}
	}
}

// TestRunRegressionGate fabricates an unbeatable baseline and requires
// the comparator to fail the run.
func TestRunRegressionGate(t *testing.T) {
	dir := t.TempDir()
	base := BenchFile{Schema: Schema, Scale: "bench", Go: "go0",
		Benchmarks: []Bench{{Name: "engine/sched", Ops: 1, Throughput: 1e18, NsPerOp: 1, AllocsPerOp: 0}}}
	b, _ := json.Marshal(base)
	basePath := filepath.Join(dir, "BENCH_0.json")
	if err := os.WriteFile(basePath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	err := run([]string{"-scale", "bench", "-out", filepath.Join(dir, "BENCH_1.json"),
		"-baseline", basePath}, &bytes.Buffer{}, &stderr)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unbeatable baseline passed (err=%v)\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("stderr does not report the regression:\n%s", stderr.String())
	}
}

func TestCompare(t *testing.T) {
	base := &BenchFile{Benchmarks: []Bench{
		{Name: "a", Throughput: 1000, AllocsPerOp: 5},
		{Name: "gone", Throughput: 10, AllocsPerOp: 1},
	}}
	cur := &BenchFile{Benchmarks: []Bench{
		{Name: "a", Throughput: 600, AllocsPerOp: 5.5},
		{Name: "new", Throughput: 1, AllocsPerOp: 0},
	}}

	// Within tolerance: 600 >= 1000*(1-0.5), 5.5 <= 5+1 — but "gone"
	// vanished, which is always a regression.
	notes, regs := compare(base, cur, 0.5, 1.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "gone") {
		t.Errorf("regressions = %v, want only the vanished probe", regs)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "a: throughput 1000 -> 600") || !strings.Contains(joined, "new: new probe") {
		t.Errorf("notes missing expected lines:\n%s", joined)
	}

	// Tighter throughput tolerance trips on "a".
	_, regs = compare(base, cur, 0.2, 1.0)
	if len(regs) != 2 {
		t.Errorf("tol=0.2: regressions = %v, want vanished + throughput", regs)
	}

	// Tighter alloc slack trips too.
	_, regs = compare(base, cur, 0.5, 0.25)
	found := false
	for _, r := range regs {
		found = found || strings.Contains(r, "allocs/op")
	}
	if !found {
		t.Errorf("alloc-slack=0.25: regressions = %v, want an allocs/op failure", regs)
	}

	// Identical snapshots never regress.
	if _, regs := compare(base, base, 0, 0); len(regs) != 0 {
		t.Errorf("self-comparison regressed: %v", regs)
	}
}

func TestFindBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := findBaseline(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("picked %q, want the highest-numbered BENCH_10.json", got)
	}

	// The snapshot being written never baselines itself.
	got, err = findBaseline(dir, filepath.Join(dir, "BENCH_10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2.json" {
		t.Errorf("picked %q with BENCH_10 excluded, want BENCH_2.json", got)
	}

	// Empty directory: no baseline, no error.
	got, err = findBaseline(t.TempDir(), "")
	if err != nil || got != "" {
		t.Errorf("empty dir: got %q, %v", got, err)
	}
}

// TestRunFlagValidation covers the flag guard rails.
func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "bogus"},
		{"-tol", "1.5"},
		{"-tol", "-0.1"},
		{"-alloc-slack", "-1"},
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "leanperf ") || !strings.Contains(out.String(), "go1") {
		t.Errorf("-version output: %q", out.String())
	}
}
