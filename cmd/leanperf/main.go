// Command leanperf records the repository's performance trajectory: a
// fixed suite of probes — engine model runs, arena service throughput
// (plain and with the flight recorder armed), a campaign sweep, and the
// cell-batched campaign path — measured for throughput, ns/op,
// allocs/op, and wall-clock latency
// percentiles, written as one BENCH_<n>.json snapshot per PR and gated
// against the previous snapshot.
//
// Usage:
//
//	leanperf -scale bench [-out BENCH_6.json] [-baseline auto|none|PATH]
//	         [-tol 0.5] [-alloc-slack 1.0] [-cpuprofile default.pgo] [-version]
//
// -cpuprofile writes a CPU profile covering the whole probe suite. The
// suite spans the hot paths the binaries spend their time on (engine
// model runs, arena service, batched campaign cells), which makes the
// profile a natural profile-guided-optimization input: the committed
// default.pgo at the repository root is exactly such a capture, and
// `go build -pgo=default.pgo ./...` consumes it.
//
// Without -out the snapshot goes to stdout. -baseline auto (the
// default) scans the output directory for the highest-numbered other
// BENCH_<n>.json and compares against it: the run fails if any probe's
// throughput drops below (1 - tol) of the baseline or its allocs/op
// exceeds the baseline by more than -alloc-slack. A missing baseline is
// a note, not a failure, so the first snapshot of a repo bootstraps the
// trajectory. The comparison report always goes to stderr.
//
// Probe measurements are wall-clock and therefore machine-dependent;
// the committed snapshots track the trajectory on one machine class,
// while CI compares snapshots taken on its own runners with generous
// tolerances. Each probe's "op" is its own unit (an engine run, an
// arena decision, a campaign instance), so ratios are comparable
// across snapshots but absolute numbers are not comparable across
// probes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"leanconsensus/internal/arena"
	"leanconsensus/internal/campaign"
	"leanconsensus/internal/cli"
	"leanconsensus/internal/dist"
	"leanconsensus/internal/engine"
	"leanconsensus/internal/harness"
	"leanconsensus/internal/metrics"
)

// Schema identifies the snapshot layout; bump on incompatible change.
const Schema = "leanperf/v1"

// Bench is one probe's measurements.
type Bench struct {
	// Name identifies the probe ("arena/throughput", ...).
	Name string `json:"name"`
	// Ops is the number of operations the probe ran.
	Ops int `json:"ops"`
	// Throughput is ops per wall-clock second.
	Throughput float64 `json:"throughput_per_sec"`
	// NsPerOp is wall-clock nanoseconds per op.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per op (runtime.MemStats.Mallocs
	// across the measured loop, including any worker goroutines serving
	// it — the service cost, not just the caller's).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// P50 and P99 are latency percentiles in microseconds over the
	// probe's per-unit wall-clock latencies (see each probe for its
	// unit).
	P50 float64 `json:"p50_us"`
	P99 float64 `json:"p99_us"`
}

// BenchFile is one committed performance snapshot.
type BenchFile struct {
	Schema     string  `json:"schema"`
	Scale      string  `json:"scale"`
	Go         string  `json:"go"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "leanperf:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("leanperf", flag.ContinueOnError)
	scaleName := fs.String("scale", "bench", "probe scale: bench, default, or full")
	out := fs.String("out", "", "snapshot path, e.g. BENCH_6.json (default stdout)")
	baseline := fs.String("baseline", "auto", `baseline snapshot: "auto" (highest other BENCH_<n>.json next to -out), "none", or a path`)
	tol := fs.Float64("tol", 0.5, "allowed fractional throughput drop vs baseline before failing")
	allocSlack := fs.Float64("alloc-slack", 1.0, "allowed allocs/op increase vs baseline before failing")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the probe suite (pprof format, PGO-ready)")
	version := fs.Bool("version", false, "print build information, then exit")
	if done, err := cli.Parse(fs, args); done {
		return err
	}
	if *version {
		cli.PrintVersion(stdout, "leanperf")
		return nil
	}
	sc, err := harness.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	if *tol < 0 || *tol >= 1 {
		return fmt.Errorf("-tol must be in [0,1), got %g", *tol)
	}
	if *allocSlack < 0 {
		return fmt.Errorf("-alloc-slack must be non-negative, got %g", *allocSlack)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
		fmt.Fprintf(stderr, "leanperf: capturing CPU profile to %s\n", *cpuprofile)
	}

	bf := &BenchFile{Schema: Schema, Scale: canonScale(*scaleName), Go: runtime.Version()}
	for _, p := range probes {
		fmt.Fprintf(stderr, "leanperf: running %s...\n", p.name)
		b, err := p.run(sc)
		if err != nil {
			return fmt.Errorf("probe %s: %w", p.name, err)
		}
		b.Name = p.name
		fmt.Fprintf(stderr, "leanperf:   %d ops, %.0f/sec, %.0f ns/op, %.2f allocs/op, p50=%.1fµs p99=%.1fµs\n",
			b.Ops, b.Throughput, b.NsPerOp, b.AllocsPerOp, b.P50, b.P99)
		bf.Benchmarks = append(bf.Benchmarks, b)
	}

	enc, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "leanperf: snapshot written to %s\n", *out)
	}

	basePath, err := resolveBaseline(*baseline, *out)
	if err != nil {
		return err
	}
	if basePath == "" {
		fmt.Fprintln(stderr, "leanperf: no baseline snapshot; comparison skipped")
		return nil
	}
	base, err := loadSnapshot(basePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", basePath, err)
	}
	notes, regressions := compare(base, bf, *tol, *allocSlack)
	fmt.Fprintf(stderr, "leanperf: comparing against %s (tol=%.0f%%, alloc-slack=%g)\n",
		basePath, *tol*100, *allocSlack)
	for _, n := range notes {
		fmt.Fprintln(stderr, "leanperf:   "+n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(stderr, "leanperf:   REGRESSION "+r)
		}
		return fmt.Errorf("%d regression(s) against %s", len(regressions), basePath)
	}
	fmt.Fprintln(stderr, "leanperf: no regressions")
	return nil
}

// canonScale canonicalizes the -scale flag for the snapshot ("" means
// default, matching harness.ParseScale).
func canonScale(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

// resolveBaseline maps the -baseline flag to a snapshot path ("" when
// there is nothing to compare against).
func resolveBaseline(flagVal, out string) (string, error) {
	switch flagVal {
	case "none":
		return "", nil
	case "auto":
		dir := "."
		if out != "" {
			dir = filepath.Dir(out)
		}
		return findBaseline(dir, out)
	default:
		return flagVal, nil
	}
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// findBaseline picks the highest-numbered BENCH_<n>.json in dir that is
// not the snapshot being written. It returns "" when none exists.
func findBaseline(dir, exclude string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if exclude != "" && filepath.Clean(path) == filepath.Clean(exclude) {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = path, n
	}
	return best, nil
}

// loadSnapshot reads and validates a snapshot file.
func loadSnapshot(path string) (*BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, err
	}
	if bf.Schema != Schema {
		return nil, fmt.Errorf("schema %q, want %q", bf.Schema, Schema)
	}
	return &bf, nil
}

// compare diffs cur against base. Notes describe every matched probe;
// regressions are the failures: throughput below (1-tol)× baseline,
// allocs/op above baseline + slack, or a probe that disappeared.
// Probes new in cur are a note only, so the suite can grow.
func compare(base, cur *BenchFile, tol, allocSlack float64) (notes, regressions []string) {
	curBy := make(map[string]Bench, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	for _, old := range base.Benchmarks {
		baseNames[old.Name] = true
		now, ok := curBy[old.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but missing from this run", old.Name))
			continue
		}
		ratio := math.Inf(1)
		if old.Throughput > 0 {
			ratio = now.Throughput / old.Throughput
		}
		notes = append(notes, fmt.Sprintf("%s: throughput %.0f -> %.0f (%.2fx), allocs/op %.2f -> %.2f",
			old.Name, old.Throughput, now.Throughput, ratio, old.AllocsPerOp, now.AllocsPerOp))
		if now.Throughput < old.Throughput*(1-tol) {
			regressions = append(regressions, fmt.Sprintf("%s: throughput %.0f/sec is below %.0f%% of baseline %.0f/sec",
				old.Name, now.Throughput, (1-tol)*100, old.Throughput))
		}
		if now.AllocsPerOp > old.AllocsPerOp+allocSlack {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %.2f exceeds baseline %.2f + slack %g",
				old.Name, now.AllocsPerOp, old.AllocsPerOp, allocSlack))
		}
	}
	var added []string
	for name := range curBy {
		if !baseNames[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		notes = append(notes, name+": new probe (no baseline)")
	}
	return notes, regressions
}

// probes is the fixed suite. Names are the comparison keys, so renaming
// one breaks the trajectory — add new probes instead.
var probes = []struct {
	name string
	run  func(sc harness.Scale) (Bench, error)
}{
	{"engine/sched", probeEngine("sched", 8, 2000, 20000, 100000)},
	{"engine/msgnet", probeEngine("msgnet", 4, 300, 3000, 10000)},
	{"arena/throughput", probeArena(nil, 4000, 40000, 200000)},
	{"arena/traced", probeArena(&arena.TraceConfig{PerShard: 2}, 4000, 40000, 200000)},
	{"campaign/sweep", probeCampaign},
	{"campaign/batch", probeCampaignBatch},
}

// opsFor picks the probe's op count for the scale.
func opsFor(sc harness.Scale, bench, def, full int) int {
	switch sc {
	case harness.ScaleFull:
		return full
	case harness.ScaleDefault:
		return def
	default:
		return bench
	}
}

// measure wraps a probe loop: it garbage-collects, snapshots allocation
// counters, runs fn (which must return one latency sample per unit),
// and assembles the Bench. Latency percentiles come from a
// metrics.Histogram over the default latency buckets — the same sketch
// and Quantile the server's telemetry uses.
func measure(ops int, fn func(h *metrics.Histogram) error) (Bench, error) {
	h := metrics.NewHistogram(nil)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := fn(h); err != nil {
		return Bench{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return Bench{
		Ops:         ops,
		Throughput:  round(float64(ops)/elapsed.Seconds(), 0),
		NsPerOp:     round(float64(elapsed.Nanoseconds())/float64(ops), 0),
		AllocsPerOp: round(float64(after.Mallocs-before.Mallocs)/float64(ops), 2),
		P50:         round(h.Quantile(0.50)*1e6, 2),
		P99:         round(h.Quantile(0.99)*1e6, 2),
	}, nil
}

// round keeps snapshots diff-friendly: values carry no more precision
// than the measurement deserves.
func round(v float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(v*p) / p
}

// probeEngine runs one execution model back to back through the
// engine's registry: op = one consensus instance, latency = its
// wall-clock run time.
func probeEngine(model string, n, bench, def, full int) func(harness.Scale) (Bench, error) {
	return func(sc harness.Scale) (Bench, error) {
		m, err := engine.ByName(model)
		if err != nil {
			return Bench{}, err
		}
		ops := opsFor(sc, bench, def, full)
		inputs := harness.HalfInputs(n)
		noise := dist.Exponential{MeanVal: 1}
		return measure(ops, func(h *metrics.Histogram) error {
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				if _, err := m.Run(engine.Spec{
					Key:    "perf",
					N:      n,
					Inputs: inputs,
					Noise:  noise,
					Seed:   uint64(i + 1),
				}, nil); err != nil {
					return err
				}
				h.Observe(time.Since(t0).Seconds())
			}
			return nil
		})
	}
}

// probeArena loads the sharded arena at full concurrency, exactly like
// leanarena: op = one decision, latency = the arena's own
// submission-to-completion wall clock. A non-nil tc arms the flight
// recorder, pinning the cost of tracing in the trajectory.
func probeArena(tc *arena.TraceConfig, bench, def, full int) func(harness.Scale) (Bench, error) {
	return func(sc harness.Scale) (Bench, error) {
		ops := opsFor(sc, bench, def, full)
		a, err := arena.New(arena.Config{
			Shards: 4, Workers: 2, N: 8, Seed: 1, Trace: tc,
		})
		if err != nil {
			return Bench{}, err
		}
		defer a.Close()
		results := make([]arena.Result, ops)
		b, err := measure(ops, func(h *metrics.Histogram) error {
			var wg sync.WaitGroup
			for i := 0; i < ops; i++ {
				done, err := a.Submit(fmt.Sprintf("perf-%08d", i), i%2)
				if err != nil {
					return err
				}
				wg.Add(1)
				go func(i int, done <-chan arena.Result) {
					defer wg.Done()
					results[i] = <-done
				}(i, done)
			}
			wg.Wait()
			for _, r := range results {
				if r.Err != nil {
					return r.Err
				}
				h.Observe(r.Latency.Seconds())
			}
			return nil
		})
		if err != nil {
			return Bench{}, err
		}
		return b, a.Close()
	}
}

// probeCampaign sweeps a small model × n grid through the campaign
// runner: op = one instance, latency = one completed grid cell (the
// campaign's unit of checkpointing).
func probeCampaign(sc harness.Scale) (Bench, error) {
	reps := opsFor(sc, 200, 2000, 10000)
	spec := campaign.Spec{
		Name:   "leanperf",
		Models: []string{"sched"},
		Dists:  []string{"exponential"},
		Ns:     []int{8, 16},
		Seeds:  []uint64{1},
		Reps:   reps,
	}
	camp, err := spec.Resolve()
	if err != nil {
		return Bench{}, err
	}
	ops := int(camp.Instances)
	return measure(ops, func(h *metrics.Histogram) error {
		last := time.Now()
		_, err := camp.Run(context.Background(), campaign.Config{
			Shards:  2,
			Workers: 2,
			OnCell: func(p campaign.Progress) {
				now := time.Now()
				h.Observe(now.Sub(last).Seconds())
				last = now
			},
		})
		return err
	})
}

// probeCampaignBatch pins the cell-batched bulk regime: many small cells
// of cheap instances forced down the batched path (arena.RunCells over
// pooled worker sessions — the 0 allocs/op loop TestRunBatchZeroAllocs
// guards). Op = one instance, latency = one completed cell. The grid
// deliberately uses the cheapest streaming-model instances (sched, n=4)
// so the probe measures the execution path, not the model: per-op
// dispatch overhead is where batched and streamed execution differ.
func probeCampaignBatch(sc harness.Scale) (Bench, error) {
	reps := opsFor(sc, 1000, 5000, 20000)
	spec := campaign.Spec{
		Name:   "leanperf-batch",
		Models: []string{"sched"},
		Dists:  []string{"exponential"},
		Ns:     []int{4},
		Seeds:  []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Reps:   reps,
	}
	camp, err := spec.Resolve()
	if err != nil {
		return Bench{}, err
	}
	ops := int(camp.Instances)
	return measure(ops, func(h *metrics.Histogram) error {
		last := time.Now()
		_, err := camp.Run(context.Background(), campaign.Config{
			Shards:    4,
			Workers:   2,
			Execution: campaign.ExecBatched,
			OnCell: func(p campaign.Progress) {
				now := time.Now()
				h.Observe(now.Sub(last).Seconds())
				last = now
			},
		})
		return err
	})
}
