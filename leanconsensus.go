// Package leanconsensus is a reproduction of James Aspnes, "Fast
// Deterministic Consensus in a Noisy Environment" (PODC 2000): the
// deterministic lean-consensus algorithm, the noisy scheduling model in
// which it terminates in Θ(log n) expected rounds, the hybrid
// quantum/priority uniprocessor model in which it finishes in at most 12
// operations, and the bounded-space combined protocol.
//
// The package offers three ways to run the algorithm:
//
//   - Simulate executes it under the noisy scheduling model of the paper
//     (Section 3.1) in a deterministic discrete-event simulation;
//   - SimulateHybrid executes it under the quantum/priority uniprocessor
//     model (Section 7);
//   - Live executes it on real goroutines against sync/atomic registers,
//     with the Go runtime as the noise source.
//
// The underlying machinery lives in internal/: the execution-model layer
// and its registries (internal/engine), schedulers, distributions, the
// model checker, and the experiment harness. The cmd/leanbench tool
// regenerates every figure and table of the paper's evaluation; Backends
// lists the execution models available to NewArena.
package leanconsensus

import (
	"errors"
	"fmt"

	"leanconsensus/internal/dist"
	"leanconsensus/internal/harness"
	"leanconsensus/internal/sched"
)

// Distribution is an interarrival-time distribution for the noisy
// scheduling model. Implementations must return non-negative samples; the
// model additionally assumes the distribution is not concentrated on a
// point (Constant exists for building degenerate schedules in tests).
type Distribution = dist.Distribution

// Adversary chooses the deterministic part of a noisy schedule: starting
// offsets and bounded per-operation delays (Section 3.1).
type Adversary = sched.Adversary

// Distribution constructors mirroring the paper's Figure 1 legend.

// Exponential returns an exponential distribution with the given mean.
func Exponential(mean float64) Distribution { return dist.Exponential{MeanVal: mean} }

// Uniform returns the uniform distribution on (lo, hi).
func Uniform(lo, hi float64) Distribution { return dist.Uniform{Lo: lo, Hi: hi} }

// Normal returns a normal distribution with the given mean and standard
// deviation, truncated to (lo, hi) by rejection.
func Normal(mean, sd, lo, hi float64) Distribution {
	return dist.TruncNormal{Mu: mean, Sigma: sd, Lo: lo, Hi: hi}
}

// Geometric returns the geometric distribution on {1, 2, ...} with success
// probability p.
func Geometric(p float64) Distribution { return dist.Geometric{P: p} }

// TwoPoint returns the distribution taking values a or b with equal
// probability.
func TwoPoint(a, b float64) Distribution { return dist.TwoPoint{A: a, B: b} }

// DelayedExponential returns offset + Exponential(mean), a delayed Poisson
// process.
func DelayedExponential(offset, mean float64) Distribution {
	return dist.Shifted{Offset: offset, Base: dist.Exponential{MeanVal: mean}}
}

// Constant returns the point mass at v. It violates the noisy-scheduling
// model's assumptions and exists for constructing degenerate (lockstep)
// schedules deliberately.
func Constant(v float64) Distribution { return dist.Constant{V: v} }

// Figure1Distributions returns the six distributions of the paper's
// Figure 1.
func Figure1Distributions() []Distribution { return dist.Figure1() }

// options collects the knobs shared by Simulate.
type options struct {
	inputs      []int
	dist        Distribution
	writeDist   Distribution
	adversary   Adversary
	failureProb float64
	seed        uint64
	bounded     bool
	rmax        int
	record      bool
	maxOps      int64
	contention  *sched.Contention
}

// Option configures Simulate.
type Option func(*options) error

// WithInputs sets each process's input bit explicitly. The default is the
// paper's simulation setup: half the processes start with each value.
func WithInputs(inputs []int) Option {
	return func(o *options) error {
		for _, b := range inputs {
			if b != 0 && b != 1 {
				return fmt.Errorf("leanconsensus: input bits must be 0 or 1, got %d", b)
			}
		}
		o.inputs = append([]int(nil), inputs...)
		return nil
	}
}

// WithDistribution sets the interarrival noise distribution (default
// Exponential(1)).
func WithDistribution(d Distribution) Option {
	return func(o *options) error {
		if d == nil {
			return errors.New("leanconsensus: nil distribution")
		}
		o.dist = d
		return nil
	}
}

// WithWriteDistribution sets a separate noise distribution for write
// operations (the model allows one distribution per operation type).
func WithWriteDistribution(d Distribution) Option {
	return func(o *options) error {
		o.writeDist = d
		return nil
	}
}

// WithAdversary sets the deterministic-delay adversary (default: none —
// the pure-noise schedule of the paper's simulations).
func WithAdversary(a Adversary) Option {
	return func(o *options) error {
		o.adversary = a
		return nil
	}
}

// WithFailures sets the per-operation halting failure probability h(n).
func WithFailures(h float64) Option {
	return func(o *options) error {
		if h < 0 || h >= 1 {
			return fmt.Errorf("leanconsensus: failure probability %v outside [0,1)", h)
		}
		o.failureProb = h
		return nil
	}
}

// WithSeed fixes the randomness, making the simulation fully reproducible.
func WithSeed(seed uint64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithBoundedSpace switches to the Section 8 combined protocol, cutting
// lean-consensus off after rmax rounds and falling back to the backup
// protocol.
func WithBoundedSpace(rmax int) Option {
	return func(o *options) error {
		if rmax < 1 {
			return fmt.Errorf("leanconsensus: rmax must be positive, got %d", rmax)
		}
		o.bounded = true
		o.rmax = rmax
		return nil
	}
}

// WithRecording captures the full operation history, enabling invariant
// checking on the run (Result.CheckInvariants).
func WithRecording() Option {
	return func(o *options) error {
		o.record = true
		return nil
	}
}

// WithMaxOps overrides the per-process operation safety valve.
func WithMaxOps(maxOps int64) Option {
	return func(o *options) error {
		if maxOps < 8 {
			return fmt.Errorf("leanconsensus: max ops %d cannot complete a round", maxOps)
		}
		o.maxOps = maxOps
		return nil
	}
}

// WithContention enables the memory-contention model (Section 10):
// operations on busy registers incur penalty × decaying-load extra delay,
// with the given load half-life.
func WithContention(halfLife, penalty float64) Option {
	return func(o *options) error {
		if halfLife <= 0 || penalty < 0 {
			return fmt.Errorf("leanconsensus: contention needs positive half-life and non-negative penalty")
		}
		o.contention = &sched.Contention{HalfLife: halfLife, Penalty: penalty}
		return nil
	}
}

// Result reports a simulated consensus execution.
type Result struct {
	// Value is the agreed bit (-1 if every process halted).
	Value int
	// Decisions holds each process's decision (-1 for halted processes).
	Decisions []int
	// FirstRound is the round at which the temporally first process
	// decided — the paper's Figure 1 metric.
	FirstRound int
	// LastRound is the largest decision round (Lemma 4: at most
	// FirstRound+1 in the pure protocol).
	LastRound int
	// OpsPerProcess holds the operations each process executed.
	OpsPerProcess []int64
	// Time is the simulated duration.
	Time float64
	// Halted marks processes killed by failures.
	Halted []bool
	// BackupUsed counts processes that entered the backup protocol
	// (bounded-space mode only).
	BackupUsed int

	run *harness.SimRun
}

// CheckInvariants verifies agreement, validity, Lemma 2 and Lemma 4
// against the recorded history. Recording must have been enabled with
// WithRecording; without it only the decision-level checks run.
func (r *Result) CheckInvariants() error {
	return r.run.CheckRun()
}

// Simulate runs one consensus among n processes under the noisy scheduling
// model and returns the outcome. The default configuration matches the
// paper's Figure 1 simulations: exponential(1) interarrival noise, no
// adversary delays, no failures, half the processes starting with each
// input, start times dithered by U(0, 1e-8).
func Simulate(n int, opts ...Option) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("leanconsensus: n must be positive, got %d", n)
	}
	o := options{dist: Exponential(1), seed: 1}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.inputs != nil && len(o.inputs) != n {
		return nil, fmt.Errorf("leanconsensus: %d inputs for %d processes", len(o.inputs), n)
	}
	variant := harness.VariantLean
	if o.bounded {
		variant = harness.VariantCombined
	}
	run, err := harness.RunSim(harness.SimConfig{
		N:             n,
		Inputs:        o.inputs,
		ReadNoise:     o.dist,
		WriteNoise:    o.writeDist,
		Adversary:     o.adversary,
		FailureProb:   o.failureProb,
		Seed:          o.seed,
		Variant:       variant,
		RMax:          o.rmax,
		Record:        o.record,
		MaxOpsPerProc: o.maxOps,
		Contention:    o.contention,
	})
	if err != nil {
		return nil, err
	}
	res := run.Res
	if res.CapHit {
		return nil, errors.New("leanconsensus: simulation hit the operation cap without termination " +
			"(degenerate schedule? see WithMaxOps)")
	}
	value, ok := res.Agreement()
	if !ok {
		// Cannot happen per Lemmas 2-4; if it ever does, fail loudly.
		return nil, fmt.Errorf("leanconsensus: agreement violated: %v", res.Decisions)
	}
	return &Result{
		Value:         value,
		Decisions:     res.Decisions,
		FirstRound:    res.FirstDecisionRound,
		LastRound:     res.LastDecisionRound,
		OpsPerProcess: res.OpCounts,
		Time:          res.Time,
		Halted:        res.Halted,
		BackupUsed:    res.BackupUsed,
		run:           run,
	}, nil
}
